//! Dense statevector storage and basic vector operations.
//!
//! The gate-level simulator lives in the `qsim` crate; this module only provides the
//! underlying data structure plus the linear-algebra primitives that both the simulator
//! and the Lanczos ground-state solver need (inner products, norms, overlaps, sampling
//! probabilities).

use crate::complex::Complex64;
use serde::{Deserialize, Serialize};

/// A dense n-qubit statevector with `2^n` complex amplitudes.
///
/// Amplitude index `b` corresponds to the computational basis state whose qubit `q` value
/// is bit `q` of `b` (little-endian qubit ordering, consistent with
/// [`crate::PauliString`]).
///
/// # Examples
///
/// ```
/// use qop::Statevector;
///
/// let psi = Statevector::basis_state(2, 0b10);
/// assert_eq!(psi.num_qubits(), 2);
/// assert!((psi.probability(0b10) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Statevector {
    amplitudes: Vec<Complex64>,
    num_qubits: usize,
}

// Manual Clone so that `clone_from` forwards to `Vec::clone_from`, which reuses the
// destination's allocation when capacities match.  The optimizer inner loops in `qsim`
// and `vqa` rely on this to re-prepare states into scratch buffers allocation-free (the
// derived impl would fall back to `*self = source.clone()`, reallocating every call).
impl Clone for Statevector {
    fn clone(&self) -> Self {
        Statevector {
            amplitudes: self.amplitudes.clone(),
            num_qubits: self.num_qubits,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.amplitudes.clone_from(&source.amplitudes);
        self.num_qubits = source.num_qubits;
    }
}

impl Statevector {
    /// Creates the all-zeros state `|0...0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 30` (a dense vector that large would not fit in memory).
    pub fn zero_state(num_qubits: usize) -> Self {
        Self::basis_state(num_qubits, 0)
    }

    /// Creates the computational basis state `|basis⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 30` or `basis >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, basis: u64) -> Self {
        assert!(
            num_qubits <= 30,
            "dense statevectors are limited to 30 qubits; use the Pauli-propagation backend for larger systems"
        );
        let dim = 1usize << num_qubits;
        assert!((basis as usize) < dim, "basis index out of range");
        let mut amplitudes = vec![Complex64::ZERO; dim];
        amplitudes[basis as usize] = Complex64::ONE;
        Statevector {
            amplitudes,
            num_qubits,
        }
    }

    /// Creates a statevector from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amplitudes: Vec<Complex64>) -> Self {
        let dim = amplitudes.len();
        assert!(
            dim.is_power_of_two() && dim > 0,
            "length must be a power of two"
        );
        let num_qubits = dim.trailing_zeros() as usize;
        Statevector {
            amplitudes,
            num_qubits,
        }
    }

    /// Creates the uniform superposition `H^{⊗n}|0⟩` (the standard QAOA initial state).
    pub fn uniform_superposition(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let amp = Complex64::from_real(1.0 / (dim as f64).sqrt());
        Statevector {
            amplitudes: vec![amp; dim],
            num_qubits,
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Dimension of the Hilbert space (`2^n`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.amplitudes.len()
    }

    /// Immutable view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amplitudes
    }

    /// Mutable view of the amplitudes (used by the gate simulator in `qsim`).
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        &mut self.amplitudes
    }

    /// The amplitude of basis state `basis`.
    #[inline]
    pub fn amplitude(&self, basis: u64) -> Complex64 {
        self.amplitudes[basis as usize]
    }

    /// The measurement probability of basis state `basis`.
    #[inline]
    pub fn probability(&self, basis: u64) -> f64 {
        self.amplitudes[basis as usize].norm_sqr()
    }

    /// All measurement probabilities (in basis order).
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Writes all measurement probabilities into `out`, reusing its allocation.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.amplitudes.iter().map(|a| a.norm_sqr()));
    }

    /// Resets this vector to the basis state `|basis⟩` in place (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `basis >= 2^num_qubits`.
    pub fn set_basis_state(&mut self, basis: u64) {
        assert!((basis as usize) < self.dim(), "basis index out of range");
        self.amplitudes.fill(Complex64::ZERO);
        self.amplitudes[basis as usize] = Complex64::ONE;
    }

    /// Resets this vector to the uniform superposition `H^{⊗n}|0⟩` in place.
    pub fn set_uniform_superposition(&mut self) {
        let amp = Complex64::from_real(1.0 / (self.dim() as f64).sqrt());
        self.amplitudes.fill(amp);
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn inner(&self, other: &Statevector) -> Complex64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.amplitudes
            .iter()
            .zip(other.amplitudes.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// The squared overlap `|⟨self|other⟩|²` (state fidelity for pure states).
    pub fn overlap(&self, other: &Statevector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// The Euclidean norm of the vector.
    pub fn norm(&self) -> f64 {
        self.amplitudes
            .iter()
            .map(|a| a.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Normalizes the vector in place. Returns the previous norm.
    ///
    /// If the norm is zero the vector is left unchanged and `0.0` is returned.
    pub fn normalize(&mut self) -> f64 {
        let n = self.norm();
        if n > 0.0 {
            // One division, then multiplies: f64 division is several times the latency of
            // a multiply and does not pipeline as well on this loop.
            let inv = 1.0 / n;
            for a in &mut self.amplitudes {
                *a = a.scale(inv);
            }
        }
        n
    }

    /// `self += coeff * other` (used by Lanczos and the Pauli-sum apply).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn axpy(&mut self, coeff: Complex64, other: &Statevector) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.amplitudes.iter_mut().zip(other.amplitudes.iter()) {
            *a += coeff * *b;
        }
    }

    /// Multiplies every amplitude by a real scalar.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.amplitudes {
            *a = a.scale(s);
        }
    }

    /// Returns a zeroed vector of the same shape.
    pub fn zeros_like(&self) -> Statevector {
        Statevector {
            amplitudes: vec![Complex64::ZERO; self.dim()],
            num_qubits: self.num_qubits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_state_has_unit_probability() {
        let psi = Statevector::basis_state(3, 0b101);
        assert_eq!(psi.dim(), 8);
        assert!((psi.probability(0b101) - 1.0).abs() < 1e-12);
        assert!((psi.norm() - 1.0).abs() < 1e-12);
        assert!((psi.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_superposition_is_normalized() {
        let psi = Statevector::uniform_superposition(4);
        assert!((psi.norm() - 1.0).abs() < 1e-12);
        for b in 0..16 {
            assert!((psi.probability(b) - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inner_product_and_overlap() {
        let a = Statevector::basis_state(2, 0);
        let b = Statevector::basis_state(2, 1);
        assert_eq!(a.inner(&b), Complex64::ZERO);
        assert!((a.overlap(&a) - 1.0).abs() < 1e-12);
        assert!(a.overlap(&b).abs() < 1e-12);
        let plus = Statevector::uniform_superposition(2);
        assert!((a.overlap(&plus) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn normalize_and_axpy() {
        let mut v = Statevector::basis_state(1, 0);
        v.scale(3.0);
        assert!((v.norm() - 3.0).abs() < 1e-12);
        let prev = v.normalize();
        assert!((prev - 3.0).abs() < 1e-12);
        assert!((v.norm() - 1.0).abs() < 1e-12);

        let mut w = Statevector::zero_state(1).zeros_like();
        w.axpy(Complex64::new(0.0, 2.0), &v);
        assert!((w.amplitude(0).im - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_infers_qubits() {
        let v = Statevector::from_amplitudes(vec![Complex64::ONE; 8]);
        assert_eq!(v.num_qubits(), 3);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        let _ = Statevector::from_amplitudes(vec![Complex64::ONE; 3]);
    }
}
