//! Qubit-wise-commuting (QWC) grouping of Pauli terms.
//!
//! Terms that commute qubit-wise can be estimated from the same measurement basis, so a
//! Hamiltonian's terms are usually grouped before shot estimation.  The paper costs shots
//! per *Pauli term* (a conservative choice it calls out explicitly in Section 7.3), but it
//! also notes that QWC grouping is a constant-factor refinement compatible with TreeVQA —
//! so the grouping machinery is provided here and exercised by the shot estimator in
//! `qsim`.

use crate::op::PauliOp;
use crate::pauli::{Pauli, PauliString};
use serde::{Deserialize, Serialize};

/// A group of mutually qubit-wise-commuting terms from a [`PauliOp`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QwcGroup {
    /// Indices into the original operator's term list.
    pub term_indices: Vec<usize>,
    /// The shared measurement basis: for each qubit, the Pauli that must be measured
    /// (identity where no term in the group touches the qubit).
    pub measurement_basis: PauliString,
}

/// Greedily partitions the terms of `op` into qubit-wise-commuting groups.
///
/// This is the standard sequential (first-fit) graph-coloring heuristic: each term is
/// placed into the first existing group it commutes qubit-wise with, or starts a new
/// group.  The result is deterministic for a given term order.
///
/// # Examples
///
/// ```
/// use qop::{group_qwc, PauliOp};
///
/// let h = PauliOp::from_labels(2, &[("ZZ", 1.0), ("ZI", 0.5), ("XX", 0.2)]);
/// let groups = group_qwc(&h);
/// assert_eq!(groups.len(), 2); // {ZZ, ZI} and {XX}
/// ```
pub fn group_qwc(op: &PauliOp) -> Vec<QwcGroup> {
    let n = op.num_qubits();
    let mut groups: Vec<QwcGroup> = Vec::new();
    'terms: for (idx, term) in op.terms().iter().enumerate() {
        for group in &mut groups {
            if term.string.qubit_wise_commutes(&group.measurement_basis) {
                // Merge: the measurement basis picks up this term's non-identity factors.
                let mut basis = group.measurement_basis;
                for (q, p) in term.string.iter_non_identity() {
                    basis.set_pauli(q, p);
                }
                group.measurement_basis = basis;
                group.term_indices.push(idx);
                continue 'terms;
            }
        }
        let mut basis = PauliString::identity(n);
        for (q, p) in term.string.iter_non_identity() {
            basis.set_pauli(q, p);
        }
        groups.push(QwcGroup {
            term_indices: vec![idx],
            measurement_basis: basis,
        });
    }
    groups
}

/// Returns the number of distinct measurement circuits needed for `op` under QWC grouping.
pub fn num_qwc_groups(op: &PauliOp) -> usize {
    group_qwc(op).len()
}

/// Returns, for each qubit, the measurement rotation implied by a measurement basis:
/// `Z`/`I` need no rotation, `X` needs a Hadamard, `Y` needs `S†·H`.
///
/// The returned vector has one entry per qubit with the Pauli to be diagonalized.
pub fn measurement_rotations(basis: &PauliString) -> Vec<Pauli> {
    (0..basis.num_qubits()).map(|q| basis.pauli_at(q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_z_terms_form_one_group() {
        let h = PauliOp::from_labels(
            3,
            &[("ZZI", 1.0), ("IZZ", 0.5), ("ZIZ", 0.25), ("ZII", 0.1)],
        );
        let groups = group_qwc(&h);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].term_indices.len(), 4);
        assert_eq!(groups[0].measurement_basis.label(), "ZZZ");
    }

    #[test]
    fn incompatible_terms_split_groups() {
        let h = PauliOp::from_labels(2, &[("ZZ", 1.0), ("XX", 1.0), ("YY", 1.0)]);
        let groups = group_qwc(&h);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn every_term_is_assigned_exactly_once() {
        let h = PauliOp::from_labels(
            3,
            &[
                ("ZZI", 1.0),
                ("XIX", 0.5),
                ("IZZ", 0.2),
                ("XXI", 0.3),
                ("YYI", 0.1),
            ],
        );
        let groups = group_qwc(&h);
        let mut seen = vec![false; h.num_terms()];
        for g in &groups {
            for &i in &g.term_indices {
                assert!(!seen[i], "term assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|s| *s));
        // Each group's terms must pairwise qubit-wise commute.
        for g in &groups {
            for (a_pos, &a) in g.term_indices.iter().enumerate() {
                for &b in &g.term_indices[a_pos + 1..] {
                    assert!(h.terms()[a]
                        .string
                        .qubit_wise_commutes(&h.terms()[b].string));
                }
            }
        }
    }

    #[test]
    fn h2_style_hamiltonian_groups_to_fewer_circuits() {
        // A 15-term H2-like operator should compress to far fewer than 15 bases.
        let h = PauliOp::from_labels(
            4,
            &[
                ("IIII", -0.8),
                ("ZIII", 0.17),
                ("IZII", 0.17),
                ("IIZI", -0.24),
                ("IIIZ", -0.24),
                ("ZZII", 0.12),
                ("IIZZ", 0.17),
                ("ZIZI", 0.16),
                ("IZIZ", 0.16),
                ("ZIIZ", 0.16),
                ("IZZI", 0.16),
                ("XXYY", -0.04),
                ("YYXX", -0.04),
                ("XYYX", 0.04),
                ("YXXY", 0.04),
            ],
        );
        let groups = group_qwc(&h);
        assert!(groups.len() < h.num_terms());
        assert!(groups.len() >= 2);
    }

    #[test]
    fn measurement_rotations_report_basis() {
        let basis = PauliString::from_label("XZY").unwrap();
        let rots = measurement_rotations(&basis);
        assert_eq!(rots, vec![Pauli::X, Pauli::Z, Pauli::Y]);
    }
}
