//! Single-qubit Pauli operators and n-qubit Pauli strings.
//!
//! A [`PauliString`] is stored in the symplectic (X-mask, Z-mask) representation, which
//! makes commutation checks, weight computation and application to computational basis
//! states O(1)/O(n) bit operations.  This representation supports up to 64 qubits, which
//! comfortably covers every benchmark in the paper (the largest is the 50-qubit
//! transverse-field Ising chain simulated through Pauli propagation).

use crate::complex::Complex64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single-qubit Pauli operator.
///
/// # Examples
///
/// ```
/// use qop::Pauli;
/// let (p, phase) = Pauli::X.mul(Pauli::Y);
/// assert_eq!(p, Pauli::Z);
/// // X·Y = iZ
/// assert_eq!(phase, 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X (bit flip).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z (phase flip).
    Z,
}

impl Pauli {
    /// All four Pauli operators, in `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns the (x, z) symplectic bits of this Pauli.
    #[inline]
    pub fn xz_bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Builds a Pauli from its (x, z) symplectic bits.
    #[inline]
    pub fn from_xz_bits(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Multiplies two single-qubit Paulis.
    ///
    /// Returns `(product, k)` where the true product is `i^k * product` and
    /// `k ∈ {0, 1, 2, 3}` (i.e. the phase is `i^k`).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Pauli) -> (Pauli, u8) {
        use Pauli::*;
        match (self, rhs) {
            (I, p) => (p, 0),
            (p, I) => (p, 0),
            (X, X) | (Y, Y) | (Z, Z) => (I, 0),
            (X, Y) => (Z, 1),
            (Y, X) => (Z, 3),
            (Y, Z) => (X, 1),
            (Z, Y) => (X, 3),
            (Z, X) => (Y, 1),
            (X, Z) => (Y, 3),
        }
    }

    /// Returns `true` if the two Paulis commute (identical, or either is identity).
    #[inline]
    pub fn commutes_with(self, rhs: Pauli) -> bool {
        self == Pauli::I || rhs == Pauli::I || self == rhs
    }

    /// Single-character label (`I`, `X`, `Y`, `Z`).
    pub fn label(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }

    /// Parses a single-character label.
    ///
    /// # Errors
    ///
    /// Returns `None` for any character other than `I`, `X`, `Y`, `Z` (case-insensitive).
    pub fn from_label(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// An n-qubit Pauli string (a tensor product of single-qubit Paulis), without coefficient.
///
/// Internally stored as symplectic bit masks.  Qubit `q` corresponds to bit `q` of the
/// masks, and to character position `q` in [`PauliString::label`] (little-endian text, so
/// `"XZI"` means X on qubit 0, Z on qubit 1, I on qubit 2).
///
/// # Examples
///
/// ```
/// use qop::{Pauli, PauliString};
///
/// let zz = PauliString::from_label("ZZ").unwrap();
/// assert_eq!(zz.num_qubits(), 2);
/// assert_eq!(zz.weight(), 2);
/// assert_eq!(zz.pauli_at(0), Pauli::Z);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PauliString {
    x_mask: u64,
    z_mask: u64,
    num_qubits: usize,
}

impl PauliString {
    /// Maximum number of qubits supported by the bit-mask representation.
    pub const MAX_QUBITS: usize = 64;

    /// Creates the identity string on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds [`PauliString::MAX_QUBITS`].
    pub fn identity(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= Self::MAX_QUBITS,
            "PauliString supports at most {} qubits, got {num_qubits}",
            Self::MAX_QUBITS
        );
        PauliString {
            x_mask: 0,
            z_mask: 0,
            num_qubits,
        }
    }

    /// Creates a string from raw symplectic masks.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds 64 or if either mask has bits above `num_qubits`.
    pub fn from_masks(x_mask: u64, z_mask: u64, num_qubits: usize) -> Self {
        assert!(num_qubits <= Self::MAX_QUBITS);
        if num_qubits < 64 {
            let valid = (1u64 << num_qubits) - 1;
            assert!(
                x_mask & !valid == 0 && z_mask & !valid == 0,
                "mask has bits outside the {num_qubits}-qubit register"
            );
        }
        PauliString {
            x_mask,
            z_mask,
            num_qubits,
        }
    }

    /// Creates a string that applies `pauli` to qubit `qubit` and identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= num_qubits`.
    pub fn single(num_qubits: usize, qubit: usize, pauli: Pauli) -> Self {
        let mut s = Self::identity(num_qubits);
        s.set_pauli(qubit, pauli);
        s
    }

    /// Creates a string from explicit per-qubit Paulis (index = qubit).
    pub fn from_paulis(paulis: &[Pauli]) -> Self {
        let mut s = Self::identity(paulis.len());
        for (q, &p) in paulis.iter().enumerate() {
            s.set_pauli(q, p);
        }
        s
    }

    /// Creates a string from a sparse list of `(qubit, Pauli)` pairs on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of range.
    pub fn from_sparse(num_qubits: usize, paulis: &[(usize, Pauli)]) -> Self {
        let mut s = Self::identity(num_qubits);
        for &(q, p) in paulis {
            s.set_pauli(q, p);
        }
        s
    }

    /// Parses a label such as `"XIZY"` (character position = qubit index).
    ///
    /// Returns `None` if the label contains any character other than `IXYZ` or is longer
    /// than 64 characters.
    pub fn from_label(label: &str) -> Option<Self> {
        if label.len() > Self::MAX_QUBITS {
            return None;
        }
        let mut s = Self::identity(label.chars().count());
        for (q, c) in label.chars().enumerate() {
            s.set_pauli(q, Pauli::from_label(c)?);
        }
        Some(s)
    }

    /// The number of qubits in the register this string acts on.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The X-part symplectic mask.
    #[inline]
    pub fn x_mask(&self) -> u64 {
        self.x_mask
    }

    /// The Z-part symplectic mask.
    #[inline]
    pub fn z_mask(&self) -> u64 {
        self.z_mask
    }

    /// Returns the Pauli acting on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= num_qubits()`.
    #[inline]
    pub fn pauli_at(&self, qubit: usize) -> Pauli {
        assert!(qubit < self.num_qubits, "qubit index out of range");
        let x = (self.x_mask >> qubit) & 1 == 1;
        let z = (self.z_mask >> qubit) & 1 == 1;
        Pauli::from_xz_bits(x, z)
    }

    /// Sets the Pauli acting on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= num_qubits()`.
    #[inline]
    pub fn set_pauli(&mut self, qubit: usize, pauli: Pauli) {
        assert!(qubit < self.num_qubits, "qubit index out of range");
        let (x, z) = pauli.xz_bits();
        let bit = 1u64 << qubit;
        if x {
            self.x_mask |= bit;
        } else {
            self.x_mask &= !bit;
        }
        if z {
            self.z_mask |= bit;
        } else {
            self.z_mask &= !bit;
        }
    }

    /// Returns the Pauli weight: the number of non-identity factors.
    #[inline]
    pub fn weight(&self) -> u32 {
        (self.x_mask | self.z_mask).count_ones()
    }

    /// Returns `true` if this is the identity string.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.x_mask == 0 && self.z_mask == 0
    }

    /// Returns `true` if the two strings commute (as operators).
    ///
    /// Uses the symplectic inner product: strings commute iff the number of positions
    /// where they anticommute qubit-wise is even.
    #[inline]
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        let a = (self.x_mask & other.z_mask).count_ones();
        let b = (self.z_mask & other.x_mask).count_ones();
        (a + b) % 2 == 0
    }

    /// Returns `true` if the strings commute **qubit-wise**: on every qubit the two
    /// factors are equal or at least one is the identity.  Qubit-wise commuting terms can
    /// be measured with the same single-qubit measurement basis (the grouping used for
    /// shot estimation).
    #[inline]
    pub fn qubit_wise_commutes(&self, other: &PauliString) -> bool {
        let support_self = self.x_mask | self.z_mask;
        let support_other = other.x_mask | other.z_mask;
        let both = support_self & support_other;
        // On shared support, the Paulis must be identical.
        ((self.x_mask ^ other.x_mask) | (self.z_mask ^ other.z_mask)) & both == 0
    }

    /// Multiplies two Pauli strings.
    ///
    /// Returns `(product, phase)` such that `self * other = phase * product`, where
    /// `phase ∈ {1, i, -1, -i}` is returned as a [`Complex64`].
    ///
    /// # Panics
    ///
    /// Panics if the strings act on registers of different sizes.
    pub fn mul(&self, other: &PauliString) -> (PauliString, Complex64) {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "cannot multiply Pauli strings on different register sizes"
        );
        let mut k: u32 = 0; // power of i
        for q in 0..self.num_qubits {
            let (_, phase) = self.pauli_at(q).mul(other.pauli_at(q));
            k = (k + phase as u32) % 4;
        }
        let product = PauliString {
            x_mask: self.x_mask ^ other.x_mask,
            z_mask: self.z_mask ^ other.z_mask,
            num_qubits: self.num_qubits,
        };
        let phase = match k {
            0 => Complex64::ONE,
            1 => Complex64::I,
            2 => -Complex64::ONE,
            _ => -Complex64::I,
        };
        (product, phase)
    }

    /// Applies this Pauli string to a computational basis state `|b⟩`.
    ///
    /// Returns `(b', phase)` such that `P|b⟩ = phase · |b'⟩`.
    #[inline]
    pub fn apply_to_basis(&self, basis: u64) -> (u64, Complex64) {
        let new_basis = basis ^ self.x_mask;
        // Y factors contribute a global i each; Z and Y factors contribute (-1)^{bit}.
        let num_y = (self.x_mask & self.z_mask).count_ones();
        let minus_signs = (basis & self.z_mask).count_ones();
        let k = (num_y + 2 * minus_signs) % 4;
        let phase = match k {
            0 => Complex64::ONE,
            1 => Complex64::I,
            2 => -Complex64::ONE,
            _ => -Complex64::I,
        };
        (new_basis, phase)
    }

    /// Extends this string to a larger register (new qubits get identity).
    ///
    /// # Panics
    ///
    /// Panics if `new_num_qubits` is smaller than the current register or exceeds 64.
    pub fn extended(&self, new_num_qubits: usize) -> PauliString {
        assert!(new_num_qubits >= self.num_qubits && new_num_qubits <= Self::MAX_QUBITS);
        PauliString {
            x_mask: self.x_mask,
            z_mask: self.z_mask,
            num_qubits: new_num_qubits,
        }
    }

    /// Formats as a dense label, qubit 0 first (e.g. `"XIZY"`).
    pub fn label(&self) -> String {
        (0..self.num_qubits)
            .map(|q| self.pauli_at(q).label())
            .collect()
    }

    /// Iterates over `(qubit, Pauli)` pairs for the non-identity factors.
    pub fn iter_non_identity(&self) -> impl Iterator<Item = (usize, Pauli)> + '_ {
        (0..self.num_qubits).filter_map(move |q| {
            let p = self.pauli_at(q);
            if p == Pauli::I {
                None
            } else {
                Some((q, p))
            }
        })
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_multiplication_table() {
        // X·Y = iZ, Y·Z = iX, Z·X = iY and the reversed orders pick up -i.
        assert_eq!(Pauli::X.mul(Pauli::Y), (Pauli::Z, 1));
        assert_eq!(Pauli::Y.mul(Pauli::X), (Pauli::Z, 3));
        assert_eq!(Pauli::Y.mul(Pauli::Z), (Pauli::X, 1));
        assert_eq!(Pauli::Z.mul(Pauli::Y), (Pauli::X, 3));
        assert_eq!(Pauli::Z.mul(Pauli::X), (Pauli::Y, 1));
        assert_eq!(Pauli::X.mul(Pauli::Z), (Pauli::Y, 3));
        for p in Pauli::ALL {
            assert_eq!(p.mul(p).0, Pauli::I);
            assert_eq!(p.mul(Pauli::I), (p, 0));
            assert_eq!(Pauli::I.mul(p), (p, 0));
        }
    }

    #[test]
    fn label_round_trip() {
        let s = PauliString::from_label("XIZY").unwrap();
        assert_eq!(s.label(), "XIZY");
        assert_eq!(s.pauli_at(0), Pauli::X);
        assert_eq!(s.pauli_at(1), Pauli::I);
        assert_eq!(s.pauli_at(2), Pauli::Z);
        assert_eq!(s.pauli_at(3), Pauli::Y);
        assert_eq!(s.weight(), 3);
        assert!(PauliString::from_label("ABC").is_none());
    }

    #[test]
    fn commutation_rules() {
        let xx = PauliString::from_label("XX").unwrap();
        let zz = PauliString::from_label("ZZ").unwrap();
        let zi = PauliString::from_label("ZI").unwrap();
        let xi = PauliString::from_label("XI").unwrap();
        assert!(xx.commutes_with(&zz)); // anticommute on both qubits -> commute overall
        assert!(!xi.commutes_with(&zi)); // anticommute on one qubit
        assert!(zi.commutes_with(&zz));
    }

    #[test]
    fn qubit_wise_commutation_is_stricter() {
        let xx = PauliString::from_label("XX").unwrap();
        let zz = PauliString::from_label("ZZ").unwrap();
        let zi = PauliString::from_label("ZI").unwrap();
        let iz = PauliString::from_label("IZ").unwrap();
        assert!(!xx.qubit_wise_commutes(&zz));
        assert!(zi.qubit_wise_commutes(&iz));
        assert!(zi.qubit_wise_commutes(&zz));
    }

    #[test]
    fn string_multiplication_tracks_phase() {
        let x = PauliString::from_label("X").unwrap();
        let y = PauliString::from_label("Y").unwrap();
        let (p, phase) = x.mul(&y);
        assert_eq!(p.label(), "Z");
        assert_eq!(phase, Complex64::I);
        let (p2, phase2) = y.mul(&x);
        assert_eq!(p2.label(), "Z");
        assert_eq!(phase2, -Complex64::I);
    }

    #[test]
    fn apply_to_basis_matches_definitions() {
        // X|0> = |1>
        let x = PauliString::from_label("X").unwrap();
        assert_eq!(x.apply_to_basis(0), (1, Complex64::ONE));
        // Z|1> = -|1>
        let z = PauliString::from_label("Z").unwrap();
        assert_eq!(z.apply_to_basis(1), (1, -Complex64::ONE));
        // Y|0> = i|1>, Y|1> = -i|0>
        let y = PauliString::from_label("Y").unwrap();
        assert_eq!(y.apply_to_basis(0), (1, Complex64::I));
        assert_eq!(y.apply_to_basis(1), (0, -Complex64::I));
        // ZZ|01> (qubit0=1, qubit1=0): (-1)^1 = -1 on same basis index
        let zz = PauliString::from_label("ZZ").unwrap();
        assert_eq!(zz.apply_to_basis(0b01), (0b01, -Complex64::ONE));
        assert_eq!(zz.apply_to_basis(0b11), (0b11, Complex64::ONE));
    }

    #[test]
    fn sparse_and_single_constructors() {
        let s = PauliString::from_sparse(5, &[(1, Pauli::X), (4, Pauli::Z)]);
        assert_eq!(s.label(), "IXIIZ");
        let t = PauliString::single(3, 2, Pauli::Y);
        assert_eq!(t.label(), "IIY");
        let pairs: Vec<_> = s.iter_non_identity().collect();
        assert_eq!(pairs, vec![(1, Pauli::X), (4, Pauli::Z)]);
    }

    #[test]
    fn extend_preserves_paulis() {
        let s = PauliString::from_label("XY").unwrap();
        let e = s.extended(4);
        assert_eq!(e.label(), "XYII");
    }

    #[test]
    #[should_panic]
    fn out_of_range_qubit_panics() {
        let s = PauliString::identity(2);
        let _ = s.pauli_at(2);
    }
}
