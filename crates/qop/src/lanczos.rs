//! Matrix-free Lanczos ground-state solver.
//!
//! Every fidelity number in the paper is relative to the exact ground-state energy of the
//! task Hamiltonian.  The authors obtain those references from classical diagonalization;
//! here we provide a Lanczos iteration with full re-orthogonalization that works directly
//! on [`PauliOp::apply`], so no dense matrix is ever formed.  It is accurate to ~1e-10 for
//! the register sizes used by the experiment harness (≤ 16 qubits dense).

use crate::complex::Complex64;
use crate::op::PauliOp;
use crate::statevector::Statevector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the Lanczos ground-state solver.
#[derive(Clone, Debug)]
pub struct LanczosOptions {
    /// Maximum total Lanczos iterations (matrix–vector products), across restarts.
    pub max_iterations: usize,
    /// Convergence tolerance on the change of the smallest Ritz value between iterations.
    pub tolerance: f64,
    /// Seed for the random starting vector.
    pub seed: u64,
    /// Maximum number of Krylov basis vectors held in memory at once.
    ///
    /// When the basis reaches this size the solver **restarts**: it collapses the basis
    /// to the current Ritz ground vector and continues iterating from there.  This
    /// bounds memory at `max_basis` statevectors (instead of up to `max_iterations` of
    /// them), which is what makes >20-qubit reference energies feasible — a 22-qubit
    /// basis vector is 64 MiB, so 200 un-restarted iterations would hold 12.5 GiB while
    /// the default cap holds under 2 GiB.  Restarting costs extra iterations (the
    /// classic explicit-restart trade-off) but not accuracy: convergence is still
    /// monitored on the global Ritz value.
    pub max_basis: usize,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_iterations: 200,
            tolerance: 1e-12,
            seed: 7,
            max_basis: 32,
        }
    }
}

/// Result of a Lanczos ground-state computation.
#[derive(Clone, Debug)]
pub struct GroundState {
    /// The estimated ground-state energy (smallest eigenvalue).
    pub energy: f64,
    /// The corresponding eigenvector.
    pub state: Statevector,
    /// Number of Lanczos iterations performed.
    pub iterations: usize,
}

/// Computes the ground state (smallest eigenvalue and eigenvector) of a Hermitian
/// [`PauliOp`] using the Lanczos algorithm with full re-orthogonalization.
///
/// # Examples
///
/// ```
/// use qop::{ground_state, LanczosOptions, PauliOp};
///
/// // H = -X has eigenvalues ±1; the ground state is |+⟩ with energy -1.
/// let h = PauliOp::from_labels(1, &[("X", -1.0)]);
/// let gs = ground_state(&h, &LanczosOptions::default());
/// assert!((gs.energy + 1.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if the operator has zero terms acting on zero qubits.
pub fn ground_state(op: &PauliOp, options: &LanczosOptions) -> GroundState {
    let n = op.num_qubits();
    let dim = 1usize << n;
    // Total matrix–vector budget.  Deliberately NOT capped at `dim`: restarts discard
    // subspace information, so a restarted run can legitimately need more than `dim`
    // products even though any single cycle cannot hold more than `dim` basis vectors.
    let m_max = options.max_iterations.max(1);
    // Memory cap: at most this many basis vectors are ever alive (plus v0/w scratch).
    // Below 3 the restarted iteration degenerates to steepest descent, which can
    // stagnate, so 3 is the enforced floor; above `dim` the extra slots are unreachable
    // (the Krylov space exhausts first).
    let basis_cap = options.max_basis.clamp(3, dim.max(3));

    // Random normalized start vector (real entries suffice for a Hermitian operator but we
    // keep complex to be general — some Hamiltonians have Y terms with complex eigenvectors).
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut v0 = Statevector::zero_state(n).zeros_like();
    {
        // Draw re then im per amplitude (the RNG-stream order of the interleaved layout,
        // preserved across the split-lane storage change so seeds reproduce).
        let (re, im) = v0.lanes_mut();
        for (r, i) in re.iter_mut().zip(im.iter_mut()) {
            *r = rng.random::<f64>() - 0.5;
            *i = rng.random::<f64>() - 0.5;
        }
    }
    v0.normalize();

    // Reusable scratch statevector: `w` receives `H|v_j⟩` (gather form, no allocation)
    // and is then orthogonalized in place each iteration.  The only per-iteration
    // allocation left is the clone that turns an *accepted* Krylov vector into a basis
    // entry — storage that must outlive the inner loop anyway, and is bounded by
    // `basis_cap` thanks to the restart.
    let mut w = v0.zeros_like();
    let mut basis: Vec<Statevector> = Vec::new();
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let mut last_ritz = f64::INFINITY;
    let mut total_iters = 0usize;

    // Reconstructs the current cycle's Ritz ground pair from (alphas, betas, basis).
    let ritz_ground = |alphas: &[f64], betas: &[f64], basis: &[Statevector]| {
        let (vals, vecs) = tridiag_eigen(alphas, &betas[..alphas.len().saturating_sub(1)]);
        let (min_idx, &energy) = vals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("tridiagonal eigenproblem returned no eigenvalues");
        let mut state = basis[0].zeros_like();
        for (k, b) in basis.iter().enumerate().take(alphas.len()) {
            state.axpy(Complex64::from_real(vecs[k][min_idx]), b);
        }
        state.normalize();
        (energy, state)
    };

    // Outer restart loop: each cycle grows a Krylov basis of at most `basis_cap` vectors
    // from the current start vector, then (if neither converged nor out of budget)
    // collapses it to the Ritz ground vector and goes again.  The Ritz value decreases
    // monotonically across restarts (each cycle's space contains its start vector), so
    // the global convergence check stays valid.
    'outer: loop {
        basis.clear();
        basis.push(v0.clone());
        alphas.clear();
        betas.clear();
        let mut done = false;

        while total_iters < m_max {
            let j = alphas.len();
            op.apply_into(&basis[j], &mut w);
            let alpha = basis[j].inner(&w).re;
            alphas.push(alpha);
            total_iters += 1;

            // w = w - alpha*vj - beta_{j-1}*v_{j-1}
            w.axpy(Complex64::from_real(-alpha), &basis[j]);
            if j > 0 {
                let beta_prev = betas[j - 1];
                w.axpy(Complex64::from_real(-beta_prev), &basis[j - 1]);
            }
            // Full re-orthogonalization against the cycle's basis (twice is classical
            // Gram-Schmidt with refinement; once is enough at our problem sizes, we do
            // two passes for safety).
            for _ in 0..2 {
                for b in &basis {
                    let coeff = b.inner(&w);
                    if coeff.norm() > 0.0 {
                        w.axpy(-coeff, b);
                    }
                }
            }

            // Ritz value check (global across restarts).  The cycle-length guard keeps a
            // fresh restart — whose first Ritz value *equals* the collapsed vector's
            // energy by construction — from declaring spurious convergence.
            let (ritz_vals, _) = tridiag_eigen(&alphas, &betas);
            let current = ritz_vals.iter().cloned().fold(f64::INFINITY, f64::min);
            if (last_ritz - current).abs() < options.tolerance && alphas.len() > 2 {
                done = true;
                break;
            }
            last_ritz = current;

            let beta = w.norm();
            if beta < 1e-14 {
                // Krylov space exhausted (exact invariant subspace found).
                done = true;
                break;
            }
            if basis.len() == basis_cap {
                // Memory cap reached: restart from the Ritz ground vector.
                break;
            }
            let mut next = w.clone();
            next.scale(1.0 / beta);
            betas.push(beta);
            basis.push(next);
        }

        if done || total_iters >= m_max {
            break 'outer;
        }
        let (_, restart) = ritz_ground(&alphas, &betas, &basis);
        v0 = restart;
    }

    let (energy, state) = ritz_ground(&alphas, &betas, &basis);
    GroundState {
        energy,
        state,
        iterations: total_iters,
    }
}

/// Convenience wrapper returning only the ground-state energy.
pub fn ground_energy(op: &PauliOp, options: &LanczosOptions) -> f64 {
    ground_state(op, options).energy
}

/// Eigen-decomposition of a real symmetric tridiagonal matrix (diagonal `alphas`,
/// off-diagonal `betas`) via the implicit QL algorithm.
///
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors[row][col]` is component `row`
/// of eigenvector `col` (columns match the eigenvalue order).
fn tridiag_eigen(alphas: &[f64], betas: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = alphas.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut d: Vec<f64> = alphas.to_vec();
    let mut e: Vec<f64> = vec![0.0; n];
    for (i, &b) in betas.iter().enumerate().take(n.saturating_sub(1)) {
        e[i] = b;
    }
    // z starts as identity; accumulates the rotations.
    let mut z = vec![vec![0.0f64; n]; n];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiagonal QL failed to converge");

            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate eigenvectors.
                for row in z.iter_mut() {
                    f = row[i + 1];
                    row[i + 1] = s * row[i] + c * f;
                    row[i] = c * row[i] - s * f;
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    (d, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn tridiag_eigen_matches_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let (vals, vecs) = tridiag_eigen(&[2.0, 2.0], &[1.0]);
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(close(sorted[0], 1.0, 1e-12));
        assert!(close(sorted[1], 3.0, 1e-12));
        // Eigenvector columns are orthonormal.
        let dot = vecs[0][0] * vecs[0][1] + vecs[1][0] * vecs[1][1];
        assert!(dot.abs() < 1e-12);
    }

    #[test]
    fn single_qubit_ground_states() {
        let z = PauliOp::from_labels(1, &[("Z", 1.0)]);
        let gs = ground_state(&z, &LanczosOptions::default());
        assert!(close(gs.energy, -1.0, 1e-9));
        // Ground state of Z is |1>.
        assert!(close(gs.state.probability(1), 1.0, 1e-8));

        let x = PauliOp::from_labels(1, &[("X", -1.0)]);
        let gs = ground_state(&x, &LanczosOptions::default());
        assert!(close(gs.energy, -1.0, 1e-9));
        assert!(close(gs.state.probability(0), 0.5, 1e-8));
    }

    #[test]
    fn two_qubit_ising_ground_energy() {
        // H = -Z0Z1 - 0.5*(X0 + X1). Exact ground energy = -(1 + 0.25).sqrt()*... compute
        // via known closed form for 2-site TFIM with open boundary:
        // eigenvalues of [[-1, -h, -h, 0], [-h, 1, 0, -h], [-h, 0, 1, -h], [0, -h, -h, -1]]
        // with h=0.5 -> ground energy = -sqrt(1 + 4h^2) = -sqrt(2) for this construction?
        // Rather than rely on a closed form, compare against dense diagonalization via
        // power iteration on (c*I - H).
        let h = PauliOp::from_labels(2, &[("ZZ", -1.0), ("XI", -0.5), ("IX", -0.5)]);
        let gs = ground_state(&h, &LanczosOptions::default());
        let reference = dense_min_eigenvalue(&h);
        assert!(close(gs.energy, reference, 1e-8));
        // Eigenvector satisfies H|psi> = E|psi>.
        let hpsi = h.apply(&gs.state);
        let residual: f64 = hpsi
            .to_amplitudes()
            .iter()
            .zip(gs.state.to_amplitudes().iter())
            .map(|(a, b)| (*a - b.scale(gs.energy)).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(residual < 1e-6, "residual too large: {residual}");
    }

    #[test]
    fn restarted_lanczos_converges_with_a_tiny_basis_cap() {
        // Same 4-qubit Heisenberg chain as below, but with the Krylov basis capped far
        // below what unrestricted convergence needs: the explicit restart must still
        // reach the dense reference, just with more iterations.
        let mut h = PauliOp::zero(4);
        for i in 0..3usize {
            for axis in ['X', 'Y', 'Z'] {
                let mut label = vec!['I'; 4];
                label[i] = axis;
                label[i + 1] = axis;
                let label: String = label.into_iter().collect();
                h.add_term(crate::pauli::PauliString::from_label(&label).unwrap(), 1.0);
            }
        }
        let reference = dense_min_eigenvalue(&h);
        let capped = LanczosOptions {
            max_basis: 4,
            max_iterations: 400,
            ..Default::default()
        };
        let gs = ground_state(&h, &capped);
        assert!(
            close(gs.energy, reference, 1e-7),
            "capped basis: {} vs {}",
            gs.energy,
            reference
        );
        // Requests below the enforced floor of 3 are clamped, not honored blindly
        // (steepest-descent-sized spaces can stagnate); the result must still converge.
        let minimal = LanczosOptions {
            max_basis: 1,
            max_iterations: 800,
            ..Default::default()
        };
        let gs = ground_state(&h, &minimal);
        assert!(
            close(gs.energy, reference, 1e-6),
            "clamped cap: {} vs {}",
            gs.energy,
            reference
        );
    }

    #[test]
    fn four_qubit_heisenberg_matches_dense() {
        let mut h = PauliOp::zero(4);
        for i in 0..3usize {
            for axis in ["X", "Y", "Z"] {
                let mut label = vec!['I'; 4];
                label[i] = axis.chars().next().unwrap();
                label[i + 1] = axis.chars().next().unwrap();
                let label: String = label.into_iter().collect();
                h.add_term(crate::pauli::PauliString::from_label(&label).unwrap(), 1.0);
            }
        }
        let gs = ground_state(&h, &LanczosOptions::default());
        let reference = dense_min_eigenvalue(&h);
        assert!(
            close(gs.energy, reference, 1e-7),
            "{} vs {}",
            gs.energy,
            reference
        );
    }

    /// Brute-force smallest eigenvalue via inverse-free power iteration on (sigma*I - H),
    /// good enough as an independent reference for tiny systems in tests.
    fn dense_min_eigenvalue(h: &PauliOp) -> f64 {
        let shift = h.l1_norm() + 1.0;
        // (shift*I - H) is positive definite with largest eigenvalue shift - E_min.
        let mut v = Statevector::uniform_superposition(h.num_qubits());
        // Slightly perturb to avoid orthogonal start.
        {
            let (re, im) = v.lanes_mut();
            for (i, (r, im_)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
                *r += 1e-3 * ((i % 7) as f64);
                *im_ += 1e-3 * ((i % 3) as f64);
            }
        }
        v.normalize();
        let mut lambda = 0.0;
        for _ in 0..5000 {
            let hv = h.apply(&v);
            let mut next = v.clone();
            next.scale(shift);
            next.axpy(Complex64::from_real(-1.0), &hv);
            let n = next.normalize();
            lambda = n;
            v = next;
        }
        shift - lambda
    }
}
