//! # qop — Pauli-operator algebra for the TreeVQA reproduction
//!
//! This crate is the numerical foundation of the workspace: complex arithmetic,
//! single-qubit Paulis, n-qubit [`PauliString`]s in symplectic representation, weighted
//! Pauli sums ([`PauliOp`], the Hamiltonian type), dense [`Statevector`] storage,
//! qubit-wise-commuting term grouping, and a matrix-free Lanczos ground-state solver.
//!
//! It replaces the roles played by Qiskit's `SparsePauliOp`/`Statevector` and SciPy's
//! sparse eigensolvers in the paper's original evaluation stack.
//!
//! ## Quick example
//!
//! ```
//! use qop::{ground_energy, LanczosOptions, PauliOp, Statevector};
//!
//! // A 2-qubit transverse-field Ising Hamiltonian.
//! let h = PauliOp::from_labels(2, &[("ZZ", -1.0), ("XI", -0.3), ("IX", -0.3)]);
//! let e0 = ground_energy(&h, &LanczosOptions::default());
//! assert!(e0 < -1.0);
//!
//! // Expectation value in the |00> state.
//! let psi = Statevector::zero_state(2);
//! assert!((h.expectation(&psi) + 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod complex;
mod grouping;
mod lanczos;
pub mod lanes;
mod op;
#[doc(hidden)]
pub mod par;
mod pauli;
mod statevector;

pub use complex::Complex64;
pub use grouping::{group_qwc, measurement_rotations, num_qwc_groups, QwcGroup};
pub use lanczos::{ground_energy, ground_state, GroundState, LanczosOptions};
pub use op::{PauliOp, PauliTerm};
pub use par::parallel_threshold;
pub use pauli::{Pauli, PauliString};
pub use statevector::Statevector;
