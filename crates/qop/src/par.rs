//! Shared parallel-execution policy for the dense kernels.
//!
//! `qop` sits at the bottom of the workspace, so the size threshold that decides when a
//! kernel is worth multi-threading lives here; `qsim` re-exports [`parallel_threshold`]
//! and documents it as the simulation stack's tuning knob.

use crate::complex::Complex64;
use std::sync::OnceLock;

/// Minimum number of indices a worker thread will take in a parallel kernel.
pub const MIN_PAR_INDICES: usize = 1 << 12;

/// The four powers of `i`, indexed by exponent mod 4 (shared by every phase kernel).
pub const I_POWERS: [Complex64; 4] = [
    Complex64::new(1.0, 0.0),
    Complex64::new(0.0, 1.0),
    Complex64::new(-1.0, 0.0),
    Complex64::new(0.0, -1.0),
];

/// The amount of per-call work (measured in amplitude visits) at which the dense kernels
/// in `qop` and `qsim` switch from serial to multi-threaded execution.
///
/// Defaults to `2^14`; override with the `QSIM_PAR_THRESHOLD` environment variable (a
/// plain count, read once per process; `0` forces every kernel serial).
pub fn parallel_threshold() -> usize {
    static THRESHOLD: OnceLock<usize> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("QSIM_PAR_THRESHOLD")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(1 << 14)
    })
}

thread_local! {
    /// Set inside [`serial_scope`]: kernels on this thread stay serial regardless of
    /// size, because an outer batch runner already owns the worker threads.
    static FORCE_SERIAL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with every dense kernel on the current thread forced serial, whatever its
/// size.  Batch runners that data-parallelize *across* states wrap each worker's
/// per-state work in this, so within-state and across-state parallelism can never nest
/// (nesting would spawn threads² with the vendored scoped-thread rayon).
pub fn serial_scope<T>(f: impl FnOnce() -> T) -> T {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            FORCE_SERIAL.with(|flag| flag.set(self.0));
        }
    }
    let prev = FORCE_SERIAL.with(|flag| flag.replace(true));
    let _reset = Reset(prev);
    f()
}

/// Whether a kernel visiting `work` amplitudes should run in parallel.
#[inline]
pub fn use_parallel(work: usize) -> bool {
    let t = parallel_threshold();
    t != 0 && work >= t && rayon::current_num_threads() > 1 && !FORCE_SERIAL.with(|flag| flag.get())
}

/// Raw pointer wrapper for sharing a mutable amplitude buffer across worker threads.
///
/// Safe only because every parallel kernel partitions the index space disjointly.
pub struct SendPtr<T>(pub *mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

// Manual impls: the derived versions would bound `T: Copy`, but a pointer is copyable
// regardless of its pointee (the batch runner shares `SendPtr<Statevector>`).
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    /// `index` must be in bounds and written by at most one thread at a time.
    #[inline(always)]
    pub unsafe fn add(self, index: usize) -> *mut T {
        unsafe { self.0.add(index) }
    }
}
