//! Split-lane (SoA) kernel helpers shared by the dense kernels in `qop` and `qsim`.
//!
//! The statevector stores amplitudes as two parallel `f64` lanes (see
//! [`crate::Statevector`]), and every dense kernel walks them in explicitly chunked
//! 4-wide inner loops with a scalar tail, so the compiler can keep the updates in AVX2
//! registers.  Two ingredients recur across those kernels and live here:
//!
//! * **Parity signs.**  Every Pauli phase in the simulator reduces to
//!   `(−1)^popcount(b & mask)` times a per-kernel complex constant (the `i^k`
//!   contribution of the Y count is index-independent and hoists out of the loop).  A
//!   per-element `popcount` + sign select serializes the inner loop, so [`SignTable`]
//!   factors the sign into `sign(high bits) · table[low 8 bits]`: the high factor is
//!   hoisted per 256-element block and the low factor is a contiguous table load the
//!   vectorizer folds straight into the FMA stream.
//! * **Lane width.**  [`LANES`] (4 × f64 = one 256-bit register) is the chunk width the
//!   kernels unroll to; the dimension of any statevector with ≥2 qubits is a multiple of
//!   it, and 1-qubit registers fall through to the scalar tails.

use crate::complex::Complex64;

/// Lane width of the chunked kernel inner loops (4 × f64 = one AVX2 register).
pub const LANES: usize = 4;

/// Bits covered by a [`SignTable`]'s low table (256 entries, 2 KiB — L1-resident).
pub const SIGN_BLOCK_BITS: usize = 8;

/// Element count of a sign-table block.
pub const SIGN_BLOCK: usize = 1 << SIGN_BLOCK_BITS;

/// `(−1)^popcount(bits)` as a branch-free ±1.0.
#[inline(always)]
pub fn parity_sign(bits: u64) -> f64 {
    1.0 - 2.0 * ((bits.count_ones() & 1) as f64)
}

/// `i^k` as an exact complex constant (components 0.0 / ±1.0) — the index-independent
/// `i^num_y` factor every Pauli phase hoists out of its inner loop.
#[inline]
pub fn i_power(k: u32) -> Complex64 {
    match k & 3 {
        0 => Complex64::new(1.0, 0.0),
        1 => Complex64::new(0.0, 1.0),
        2 => Complex64::new(-1.0, 0.0),
        _ => Complex64::new(0.0, -1.0),
    }
}

/// Factored parity-sign lookup for a fixed mask: `sign(b) = block_sign(b & !255) ·
/// low[b & 255]`, with the low factors precomputed as a contiguous ±1.0 table.
///
/// Kernels hoist [`SignTable::block_sign`] out of each 256-element block and multiply
/// the inner loop by the table — a sequential load the autovectorizer handles, where the
/// original per-element `popcount` + table-select did not.
pub struct SignTable {
    low: [f64; SIGN_BLOCK],
    high_mask: u64,
}

impl SignTable {
    /// Builds the table for `mask`, filling entries only up to `index_bound` (doubling
    /// construction: one sign flip per entry).
    ///
    /// `index_bound` is the exclusive upper bound of the indices the caller will look
    /// up (the kernel's `dim` or half-block size — always a power of two); capping the
    /// fill there keeps table construction proportional to the kernel's own work, so
    /// tiny registers (a 4-qubit VQE inner loop is 16 amplitudes per pass) don't pay a
    /// 256-entry fill per gate.  Entries past the cap stay `1.0` and must not be read.
    pub fn new(mask: u64, index_bound: usize) -> Self {
        let mut low = [1.0f64; SIGN_BLOCK];
        let cap = index_bound.next_power_of_two().min(SIGN_BLOCK);
        let low_mask = mask & (SIGN_BLOCK as u64 - 1);
        let mut filled = 1usize;
        while filled < cap {
            let flip = if low_mask & filled as u64 != 0 {
                -1.0
            } else {
                1.0
            };
            for j in 0..filled {
                low[filled + j] = flip * low[j];
            }
            filled <<= 1;
        }
        SignTable {
            low,
            high_mask: mask & !(SIGN_BLOCK as u64 - 1),
        }
    }

    /// The hoisted per-block factor: `(−1)^popcount(block_start & mask & !255)`.
    #[inline(always)]
    pub fn block_sign(&self, block_start: u64) -> f64 {
        parity_sign(block_start & self.high_mask)
    }

    /// The low-bits factor for an index whose low 8 bits are `j` (`j < 256`).
    #[inline(always)]
    pub fn lane(&self, j: usize) -> f64 {
        self.low[j & (SIGN_BLOCK - 1)]
    }

    /// The full low table (for kernels that slice it against an amplitude block).
    #[inline(always)]
    pub fn low(&self) -> &[f64; SIGN_BLOCK] {
        &self.low
    }

    /// The complete sign of an arbitrary index (scalar-tail helper).
    #[inline(always)]
    pub fn sign(&self, b: u64) -> f64 {
        self.block_sign(b) * self.lane(b as usize & (SIGN_BLOCK - 1))
    }
}

/// Dispatches `body!(M)` with `M` the compile-time constant `m & 3`.
///
/// The general Pauli kernels pair lane `off` with lane `off ^ xl`; within an aligned
/// 4-chunk the partner indices are the chunk at `off ^ (xl & !3)` permuted by
/// `m = xl & 3`.  Monomorphizing the inner loop over the four possible `m` values turns
/// that permutation into a constant shuffle instead of four scalar gathers.
#[macro_export]
macro_rules! with_lane_perm {
    ($m:expr, $body:ident) => {
        match $m & 3 {
            0 => $body!(0),
            1 => $body!(1),
            2 => $body!(2),
            _ => $body!(3),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_sign_matches_popcount() {
        for bits in [0u64, 1, 0b11, 0b1011, u64::MAX, 1 << 63] {
            let expected = if bits.count_ones() % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            assert_eq!(parity_sign(bits), expected);
        }
    }

    #[test]
    fn sign_table_factorization_is_exact() {
        for mask in [0u64, 0b1, 0b1010_1100, 0xfff0, 0xdead_beef_dead_beef] {
            let table = SignTable::new(mask, SIGN_BLOCK);
            for b in (0..5000u64).chain([1 << 20, (1 << 20) | 137, u64::MAX - 255]) {
                assert_eq!(
                    table.sign(b),
                    parity_sign(b & mask),
                    "mask {mask:#x}, b {b:#x}"
                );
            }
        }
    }

    #[test]
    fn capped_fill_covers_exactly_the_bounded_indices() {
        // A 16-amplitude register only needs (and only gets) 16 filled entries.
        let mask = 0b1011u64;
        let table = SignTable::new(mask, 16);
        for j in 0..16usize {
            assert_eq!(table.lane(j), parity_sign(j as u64 & mask), "j {j}");
        }
        // Entries past the cap are untouched fill, not signs.
        assert_eq!(table.lane(16), 1.0);
    }

    #[test]
    fn lane_perm_dispatch_monomorphizes() {
        fn perm(m: usize) -> [usize; 4] {
            macro_rules! body {
                ($m:literal) => {
                    [0 ^ $m, 1 ^ $m, 2 ^ $m, 3 ^ $m]
                };
            }
            with_lane_perm!(m, body)
        }
        assert_eq!(perm(0), [0, 1, 2, 3]);
        assert_eq!(perm(1), [1, 0, 3, 2]);
        assert_eq!(perm(2), [2, 3, 0, 1]);
        assert_eq!(perm(3), [3, 2, 1, 0]);
    }
}
