//! The multi-connection TCP front-end over an executor.
//!
//! A [`NetServer`] binds a `TcpListener` over an `Arc<Executor>` and maps **each
//! connection to one [`ExecClient`]** — the executor's fair round-robin scheduling and
//! per-client admission bounds therefore apply per connection, so one greedy remote
//! caller cannot starve the others any more than a greedy in-process client could.
//! Completions are pushed as request-id-tagged frames by a per-connection writer
//! thread the moment each job finishes (via [`qexec::JobHandle::on_complete`]), so
//! results stream out of order with no thread and no poll per in-flight job.
//!
//! Failure is structural, mirroring the executor's own contract: every `ExecError`
//! (validation, admission rejection, quarantine, panic) becomes a wire error frame
//! carrying its stable code — never a dropped connection; a malformed payload is
//! answered with [`crate::wire::CODE_MALFORMED`] and the connection survives (the
//! length prefix keeps the stream synced); only an unframeable stream (bad magic,
//! oversized frame, transport error) closes the connection.  `QNET_MAX_CONNS` bounds
//! the connection count with a polite over-capacity control frame, and
//! [`NetServer::shutdown`] drains gracefully: stop accepting, fail queued jobs with
//! the `ShutDown` code, wait out in-flight work, notify every peer.

use crate::wire::{self, ControlKind, Frame, SubmitFrame, WireError};
use crate::{max_conns_from_env, max_frame_from_env};
use qexec::{ExecClient, ExecError, Executor};
use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Names of the server's always-live event counters, in [`event`] index order.
pub const NET_EVENT_NAMES: &[&str] = &[
    "conns_accepted",
    "conns_closed",
    "conns_rejected",
    "frames_in",
    "frames_out",
    "bytes_in",
    "bytes_out",
    "decode_errors",
    "submits",
    "probes",
    "batches",
    "results_sent",
    "errors_sent",
];

/// Indices into [`NET_EVENT_NAMES`] / the server registry's counters.
pub mod event {
    /// Connections accepted and served.
    pub const CONNS_ACCEPTED: usize = 0;
    /// Connections that ended (client close, protocol error, or shutdown).
    pub const CONNS_CLOSED: usize = 1;
    /// Connections politely refused at `QNET_MAX_CONNS`.
    pub const CONNS_REJECTED: usize = 2;
    /// Frames decoded from clients.
    pub const FRAMES_IN: usize = 3;
    /// Frames written to clients.
    pub const FRAMES_OUT: usize = 4;
    /// Bytes read from clients.
    pub const BYTES_IN: usize = 5;
    /// Bytes written to clients.
    pub const BYTES_OUT: usize = 6;
    /// Payloads that failed to decode (answered with `CODE_MALFORMED` or closed).
    pub const DECODE_ERRORS: usize = 7;
    /// Evaluation submissions received.
    pub const SUBMITS: usize = 8;
    /// Probe submissions received.
    pub const PROBES: usize = 9;
    /// Batch frames received.
    pub const BATCHES: usize = 10;
    /// Successful results written.
    pub const RESULTS_SENT: usize = 11;
    /// Error frames written.
    pub const ERRORS_SENT: usize = 12;
}

/// Reader poll interval: how quickly an idle connection notices server shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Once a frame has started arriving, how long the rest may take.  A peer that stalls
/// mid-frame longer than this is treated as gone (the stream would be desynced).
const FRAME_TIMEOUT: Duration = Duration::from_secs(5);

/// Configures and binds a [`NetServer`]; see [`NetServer::builder`].
pub struct NetServerBuilder {
    executor: Arc<Executor>,
    max_conns: usize,
    max_frame: usize,
    observability: Option<bool>,
}

impl NetServerBuilder {
    /// Caps concurrent connections (default: `QNET_MAX_CONNS`, or 64).  Connections
    /// past the cap receive an over-capacity control frame and are closed.
    pub fn max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns.max(1);
        self
    }

    /// Caps frame payload size in bytes (default: `QNET_MAX_FRAME`, or 8 MiB).
    pub fn max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }

    /// Enables or disables per-connection labeled request counters on the server's
    /// registry (event counters are always live).  Defaults to the process-wide
    /// [`qobs::enabled`] setting (`QOBS`).
    pub fn observability(mut self, enabled: bool) -> Self {
        self.observability = Some(enabled);
        self
    }

    /// Binds the listener and starts accepting connections.
    pub fn bind(self, addr: impl ToSocketAddrs) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            executor: self.executor,
            obs: qobs::Registry::with_capacity(
                NET_EVENT_NAMES,
                self.observability.unwrap_or_else(qobs::enabled),
                qobs::ring_capacity_from_env(),
            ),
            max_conns: self.max_conns,
            max_frame: self.max_frame,
            shutdown: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            inflight: Mutex::new(0),
            drain_cv: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("qnet-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn qnet accept thread");
        Ok(NetServer {
            shared,
            local_addr,
            accept: Mutex::new(Some(accept)),
        })
    }
}

/// A TCP execution server; see the [module docs](self).
pub struct NetServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl NetServer {
    /// Starts configuring a server over `executor`; connection/frame caps default
    /// from `QNET_MAX_CONNS` / `QNET_MAX_FRAME`.
    pub fn builder(executor: Arc<Executor>) -> NetServerBuilder {
        NetServerBuilder {
            executor,
            max_conns: max_conns_from_env(),
            max_frame: max_frame_from_env(),
            observability: None,
        }
    }

    /// Binds with environment-default settings: `NetServer::builder(executor).bind(addr)`.
    pub fn bind(addr: impl ToSocketAddrs, executor: Arc<Executor>) -> std::io::Result<NetServer> {
        NetServer::builder(executor).bind(addr)
    }

    /// The bound listen address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The executor this server fronts.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.shared.executor
    }

    /// The server's observability registry: always-live [`NET_EVENT_NAMES`] counters,
    /// plus per-connection labeled request counters when recording is enabled.
    pub fn observability(&self) -> Arc<qobs::Registry> {
        Arc::clone(&self.shared.obs)
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.conns.lock().unwrap().len()
    }

    /// Gracefully shuts the server down (idempotent; also runs on drop): stop
    /// accepting, fail every *queued* job with the `ShutDown` wire code, wait for
    /// in-flight executions to push their results, notify every connection with a
    /// shutdown control frame, and join the connection threads.  The fronted
    /// executor itself is left running — it belongs to the caller.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway local connection; the accept
        // loop sees the flag and exits before serving it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.lock().unwrap().take() {
            let _ = accept.join();
        }
        // Take ownership of every live connection, then cancel their queued jobs:
        // the completion callbacks observe the shutdown flag and report the
        // `ShutDown` code on the wire instead of `Cancelled`.
        let entries: Vec<ConnEntry> = {
            let mut conns = self.shared.conns.lock().unwrap();
            conns.drain().map(|(_, entry)| entry).collect()
        };
        for entry in &entries {
            entry.client.cancel_queued();
        }
        // Drain in-flight work: every accepted submission holds an inflight tick
        // until its completion frame is handed to a writer.
        let mut inflight = self.shared.inflight.lock().unwrap();
        while *inflight > 0 {
            inflight = self.shared.drain_cv.wait(inflight).unwrap();
        }
        drop(inflight);
        for entry in entries {
            let _ = entry
                .writer_tx
                .send(Frame::Control(ControlKind::ShuttingDown));
            let ConnEntry {
                writer_tx,
                stream,
                reader,
                writer,
                ..
            } = entry;
            // Closing the channel (and the read half) lets both threads finish.
            drop(writer_tx);
            let _ = stream.shutdown(Shutdown::Read);
            let _ = reader.join();
            let _ = writer.join();
            self.shared.obs.counters().inc(event::CONNS_CLOSED);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct ServerShared {
    executor: Arc<Executor>,
    obs: Arc<qobs::Registry>,
    max_conns: usize,
    max_frame: usize,
    shutdown: AtomicBool,
    next_conn_id: AtomicU64,
    conns: Mutex<HashMap<u64, ConnEntry>>,
    /// Accepted submissions whose completion frame has not yet been handed to a
    /// writer; [`NetServer::shutdown`] waits for this to reach zero.
    inflight: Mutex<u64>,
    drain_cv: Condvar,
}

impl ServerShared {
    fn inflight_inc(&self) {
        *self.inflight.lock().unwrap() += 1;
    }

    fn inflight_dec(&self) {
        let mut inflight = self.inflight.lock().unwrap();
        *inflight -= 1;
        if *inflight == 0 {
            self.drain_cv.notify_all();
        }
    }
}

struct ConnEntry {
    client: ExecClient,
    writer_tx: Sender<Frame>,
    stream: TcpStream,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = wire::write_frame(
                &mut &stream,
                &Frame::Control(ControlKind::ShuttingDown),
                shared.max_frame,
            );
            return;
        }
        let _ = stream.set_nodelay(true);
        // The capacity check and the connection registration happen under one lock
        // acquisition, so concurrent accepts cannot overshoot the cap.
        let mut conns = shared.conns.lock().unwrap();
        if conns.len() >= shared.max_conns {
            drop(conns);
            shared.obs.counters().inc(event::CONNS_REJECTED);
            let _ = wire::write_frame(
                &mut &stream,
                &Frame::Control(ControlKind::OverCapacity),
                shared.max_frame,
            );
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let (reader_stream, writer_stream) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(r), Ok(w)) => (r, w),
            _ => continue,
        };
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let client = shared.executor.client();
        let (writer_tx, writer_rx) = mpsc::channel::<Frame>();
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("qnet-conn{conn_id}-writer"))
                .spawn(move || writer_loop(writer_stream, writer_rx, shared))
                .expect("spawn qnet writer thread")
        };
        let reader = {
            let shared = Arc::clone(&shared);
            let client = client.clone();
            let tx = writer_tx.clone();
            std::thread::Builder::new()
                .name(format!("qnet-conn{conn_id}-reader"))
                .spawn(move || reader_loop(reader_stream, shared, conn_id, client, tx))
                .expect("spawn qnet reader thread")
        };
        conns.insert(
            conn_id,
            ConnEntry {
                client,
                writer_tx,
                stream,
                reader,
                writer,
            },
        );
        drop(conns);
        shared.obs.counters().inc(event::CONNS_ACCEPTED);
    }
}

/// A `Read` adapter that feeds the server's `bytes_in` counter.
struct CountingRead<'a> {
    inner: &'a TcpStream,
    obs: &'a qobs::Registry,
}

impl Read for CountingRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.obs.counters().add(event::BYTES_IN, n as u64);
        Ok(n)
    }
}

fn reader_loop(
    stream: TcpStream,
    shared: Arc<ServerShared>,
    conn_id: u64,
    client: ExecClient,
    tx: Sender<Frame>,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Shutdown owns this connection's teardown.
            return;
        }
        // Poll a single byte so an idle connection re-checks the shutdown flag every
        // interval; once a frame starts, the rest must arrive within FRAME_TIMEOUT
        // (a stall mid-frame would leave the stream desynced — close it).
        let mut first = [0u8; 1];
        match (&stream).read(&mut first) {
            Ok(0) => break,
            Ok(_) => {
                shared.obs.counters().inc(event::BYTES_IN);
                let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
                let result = {
                    let mut framed = first.as_slice().chain(CountingRead {
                        inner: &stream,
                        obs: &shared.obs,
                    });
                    wire::read_frame(&mut framed, shared.max_frame)
                };
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                match result {
                    Ok(frame) => {
                        shared.obs.counters().inc(event::FRAMES_IN);
                        if !handle_frame(&shared, conn_id, &client, &tx, frame) {
                            break;
                        }
                    }
                    Err(WireError::Malformed { request_id, reason }) => {
                        // The payload arrived in full, so the stream is still
                        // frame-synced: answer and keep serving.
                        shared.obs.counters().inc(event::DECODE_ERRORS);
                        let _ = tx.send(Frame::Error {
                            request_id,
                            code: wire::CODE_MALFORMED,
                            aux0: 0,
                            aux1: 0,
                            text: reason.to_string(),
                        });
                    }
                    Err(_) => {
                        // Bad magic / version / oversized frame / transport error:
                        // the stream cannot be trusted to be frame-aligned.
                        shared.obs.counters().inc(event::DECODE_ERRORS);
                        break;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    // Client-initiated close (EOF, protocol violation, or transport error): withdraw
    // this connection and its queued work.  If shutdown drained the map first, it
    // owns teardown and this is a no-op.
    let entry = shared.conns.lock().unwrap().remove(&conn_id);
    if let Some(entry) = entry {
        entry.client.cancel_queued();
        shared.obs.counters().inc(event::CONNS_CLOSED);
        // Dropping the entry detaches the join handles and closes its writer
        // channel; the writer exits once in-flight completion callbacks (which hold
        // sender clones) finish.
    }
}

/// Handles one decoded frame; returns `false` when the connection must close (a
/// client sent a server-only frame).
fn handle_frame(
    shared: &Arc<ServerShared>,
    conn_id: u64,
    client: &ExecClient,
    tx: &Sender<Frame>,
    frame: Frame,
) -> bool {
    match frame {
        Frame::Submit(entry) => {
            submit_one(shared, conn_id, client, tx, entry);
            true
        }
        Frame::SubmitBatch(entries) => {
            shared.obs.counters().inc(event::BATCHES);
            // Pause around the group so it coalesces into one scheduling slate,
            // exactly like a local `submit_all`; on a refused entry the group's
            // accepted jobs are withdrawn (their frames report the cancellation) and
            // the remaining entries are refused with the same error.
            let pause = shared.executor.scoped_pause();
            let mut failed: Option<ExecError> = None;
            let mut accepted: Vec<qexec::JobHandle> = Vec::new();
            for entry in entries {
                if let Some(err) = &failed {
                    shared.obs.counters().inc(if entry.probe {
                        event::PROBES
                    } else {
                        event::SUBMITS
                    });
                    let _ = tx.send(Frame::from_exec_error(entry.request_id, err));
                    continue;
                }
                match submit_one_inner(shared, conn_id, client, tx, entry) {
                    Ok(handle) => accepted.push(handle),
                    Err(err) => {
                        for handle in &accepted {
                            // Still queued (the pause holds the scheduler off), so
                            // each cancel succeeds and its completion callback
                            // reports the withdrawal on the wire.
                            handle.cancel();
                        }
                        accepted.clear();
                        failed = Some(err);
                    }
                }
            }
            drop(pause);
            true
        }
        // Result / Error / Control frames flow server → client only.
        Frame::Result { .. } | Frame::Error { .. } | Frame::Control(_) => false,
    }
}

fn submit_one(
    shared: &Arc<ServerShared>,
    conn_id: u64,
    client: &ExecClient,
    tx: &Sender<Frame>,
    entry: SubmitFrame,
) {
    let _ = submit_one_inner(shared, conn_id, client, tx, entry);
}

/// Submits one entry, pushing its completion (or refusal) through the writer.
/// Returns the handle so the batch path can withdraw accepted jobs on a later
/// refusal.
fn submit_one_inner(
    shared: &Arc<ServerShared>,
    conn_id: u64,
    client: &ExecClient,
    tx: &Sender<Frame>,
    entry: SubmitFrame,
) -> Result<qexec::JobHandle, ExecError> {
    let SubmitFrame {
        request_id,
        probe,
        opts,
        job,
    } = entry;
    // Refuse work that races past a shutdown's queued-job withdrawal: once the
    // drain has started, a late submission must not re-arm the inflight count.
    if shared.shutdown.load(Ordering::SeqCst) {
        let _ = tx.send(Frame::from_exec_error(request_id, &ExecError::ShutDown));
        return Err(ExecError::ShutDown);
    }
    shared
        .obs
        .counters()
        .inc(if probe { event::PROBES } else { event::SUBMITS });
    if shared.obs.enabled() {
        shared.obs.labeled().inc(&format!("conn{conn_id}_requests"));
    }
    let submitted = if probe {
        client.submit_probe_with(job, &opts)
    } else {
        client.submit_with(job, &opts)
    };
    match submitted {
        Ok(handle) => {
            shared.inflight_inc();
            let tx = tx.clone();
            let shared = Arc::clone(shared);
            handle.on_complete(move |result| {
                let frame = match result {
                    Ok(result) => Frame::Result {
                        request_id,
                        result: result.clone(),
                    },
                    Err(err) => {
                        // Queued jobs withdrawn by a server shutdown surface as
                        // `ShutDown` on the wire, not as an inexplicable
                        // cancellation the client never asked for.
                        let err = if matches!(err, ExecError::Cancelled)
                            && shared.shutdown.load(Ordering::SeqCst)
                        {
                            &ExecError::ShutDown
                        } else {
                            err
                        };
                        Frame::from_exec_error(request_id, err)
                    }
                };
                let _ = tx.send(frame);
                shared.inflight_dec();
            });
            Ok(handle)
        }
        Err(err) => {
            // Submission-time refusals (validation, unknown backend, admission
            // control) answer immediately — a structured error frame, not a drop.
            let _ = tx.send(Frame::from_exec_error(request_id, &err));
            Err(err)
        }
    }
}

fn writer_loop(stream: TcpStream, rx: Receiver<Frame>, shared: Arc<ServerShared>) {
    let mut writer = BufWriter::new(stream);
    // Blocking receive, then opportunistically drain whatever else is ready before
    // flushing once: completions that pile up under load share a flush, while a lone
    // result still flushes immediately.
    'outer: while let Ok(mut frame) = rx.recv() {
        loop {
            let sent_event = match &frame {
                Frame::Error { .. } => Some(event::ERRORS_SENT),
                Frame::Result { .. } => Some(event::RESULTS_SENT),
                _ => None,
            };
            match wire::write_frame(&mut writer, &frame, shared.max_frame) {
                Ok(bytes) => {
                    let counters = shared.obs.counters();
                    counters.inc(event::FRAMES_OUT);
                    counters.add(event::BYTES_OUT, bytes as u64);
                    if let Some(ev) = sent_event {
                        counters.inc(ev);
                    }
                }
                Err(_) => break 'outer,
            }
            match rx.try_recv() {
                Ok(next) => frame = next,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    let _ = writer.flush();
                    return;
                }
            }
        }
        if writer.flush().is_err() {
            break;
        }
    }
    let _ = writer.flush();
}
