//! The versioned, length-prefixed binary wire protocol.
//!
//! This is the first untrusted-input boundary in the codebase, and the codec is written
//! accordingly: every frame is length-prefixed and capped by a max-frame-size limit
//! before a single payload byte is buffered, every length field inside a payload is
//! checked against the bytes actually remaining before any allocation, and every decode
//! failure is a structured [`WireError`] — never a panic, never an unbounded
//! allocation.  Encoding is hand-rolled over `std::io::{Read, Write}` (the vendored
//! serde is an API stand-in, not a serializer) with all integers little-endian and
//! `f64`s as raw IEEE-754 bits, so floating-point payloads round-trip bit-exactly —
//! the loopback bit-identity contract starts here.
//!
//! # Frame layout
//!
//! ```text
//! +-------+---------+------+------------+-------------+-- - - -
//! | magic | version | type | request id | payload len | payload
//! |  u32  |   u8    |  u8  |    u64     |     u32     |
//! +-------+---------+------+------------+-------------+-- - - -
//! ```
//!
//! Frame types: `Submit` (one job + options), `SubmitBatch` (a group that must
//! coalesce into one scheduling slate), `Result`, `Error` (a stable
//! [`qexec::ExecError`] code plus payload), and `Control` (over-capacity reject /
//! shutdown notice).  Responses carry the request id of the submission they resolve,
//! which is what lets the server stream completions out of order.

use qcircuit::{Circuit, Gate};
use qexec::{EvalJob, ExecError, SubmitOptions};
use qop::{PauliOp, PauliString};
use qrng::StreamId;
use std::io::{Read, Write};
use std::sync::Arc;
use vqa::{BackendCaps, EvalResult, InitialState};

/// Frame magic: `"QNET"` as a little-endian `u32`.
pub const MAGIC: u32 = 0x514E_4554;

/// Protocol version; bumped on any incompatible layout change.
pub const VERSION: u8 = 1;

/// Default cap on a frame's payload size (8 MiB), overridable per endpoint (the
/// server reads `QNET_MAX_FRAME`).  Both sides enforce it: readers refuse to buffer a
/// larger payload, writers refuse to emit one.
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

/// Error-frame code for a payload that arrived framed correctly but failed to decode
/// (outside the [`ExecError::code`] space, which starts at 1 and stays well below
/// this).  The server answers with this code and keeps the connection: a
/// length-prefixed payload that fails decoding leaves the stream frame-synced.
pub const CODE_MALFORMED: u16 = 100;

/// Fixed frame-header length: magic (4) + version (1) + type (1) + request id (8) +
/// payload length (4).
pub const HEADER_LEN: usize = 18;

/// Frame-type byte: a single job submission ([`Frame::Submit`]).
pub const TYPE_SUBMIT: u8 = 1;
/// Frame-type byte: a coalesced group submission ([`Frame::SubmitBatch`]).
pub const TYPE_SUBMIT_BATCH: u8 = 2;
/// Frame-type byte: a successful completion ([`Frame::Result`]).
pub const TYPE_RESULT: u8 = 3;
/// Frame-type byte: a structured failure ([`Frame::Error`]).
pub const TYPE_ERROR: u8 = 4;
/// Frame-type byte: a connection-level control notice ([`Frame::Control`]).
pub const TYPE_CONTROL: u8 = 5;

/// Why a frame could not be read, written, or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes EOF mid-frame).
    Io(std::io::Error),
    /// The stream's next frame does not start with [`MAGIC`] — the peer is not
    /// speaking this protocol (or the stream desynced); the connection must close.
    BadMagic(u32),
    /// The peer speaks an unsupported protocol version.
    UnsupportedVersion(u8),
    /// The header names a frame type this version does not define.
    UnknownFrameType(u8),
    /// The header announces a payload larger than the endpoint's frame cap.  Refused
    /// before buffering: an attacker-supplied length never sizes an allocation.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// The endpoint's cap.
        max: usize,
    },
    /// The payload arrived complete but failed to decode.  Recoverable: the stream is
    /// still frame-synced, and `request_id` lets a server answer the offending
    /// request with a [`CODE_MALFORMED`] error frame instead of dropping the
    /// connection.
    Malformed {
        /// Request id from the offending frame's header.
        request_id: u64,
        /// What the payload violated.
        reason: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Malformed { request_id, reason } => {
                write!(f, "malformed payload for request {request_id}: {reason}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One submission: a request id (echoed by the response), the probe flag, options,
/// and the job itself.
///
/// The job's `deadline` does not traverse the wire (an `Instant` is meaningless on
/// another host — bound waits client-side with `wait_timeout`); its `rng_stream` is
/// folded into the options at encode time (the options stream wins at admission
/// anyway), so a decoded job always carries `rng_stream: None` and the options carry
/// the resolved pin.
#[derive(Clone, Debug)]
pub struct SubmitFrame {
    /// Connection-scoped request id; the matching `Result`/`Error` frame echoes it.
    pub request_id: u64,
    /// `true` submits through the probe path (exact expectation, zero shots).
    pub probe: bool,
    /// Submission options, including the determinism-critical RNG stream pin.
    pub opts: SubmitOptions,
    /// The job to execute.
    pub job: EvalJob,
}

/// A connection-level control notice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlKind {
    /// The server is at `QNET_MAX_CONNS`; this connection is being politely refused.
    OverCapacity,
    /// The server is shutting down; no further submissions will be accepted.
    ShuttingDown,
}

/// A decoded frame.
#[derive(Clone, Debug)]
pub enum Frame {
    /// One job submission (client → server).
    Submit(SubmitFrame),
    /// A group of submissions that must coalesce into one scheduling slate
    /// (client → server).  The header's request id is the first entry's.
    SubmitBatch(Vec<SubmitFrame>),
    /// A successful completion (server → client).
    Result {
        /// The submission this resolves.
        request_id: u64,
        /// The job's result.
        result: EvalResult,
    },
    /// A failed completion or refused submission (server → client).  `code`, `aux0`,
    /// `aux1`, and `text` are exactly [`ExecError::code`] + [`ExecError::parts`]
    /// (or [`CODE_MALFORMED`] for an undecodable payload).
    Error {
        /// The submission this resolves.
        request_id: u64,
        /// Stable numeric error code.
        code: u16,
        /// First numeric payload.
        aux0: u64,
        /// Second numeric payload.
        aux1: u64,
        /// String payload (backend name, panic message, …).
        text: String,
    },
    /// A connection-level control notice (server → client).
    Control(ControlKind),
}

impl Frame {
    /// Builds an error frame from an [`ExecError`] (the server's completion path).
    pub fn from_exec_error(request_id: u64, err: &ExecError) -> Frame {
        let (aux0, aux1, text) = err.parts();
        Frame::Error {
            request_id,
            code: err.code(),
            aux0,
            aux1,
            text,
        }
    }

    /// Rebuilds the [`ExecError`] an error frame carries.  Unknown codes — a newer
    /// peer, or the frame-level [`CODE_MALFORMED`] — degrade to
    /// [`ExecError::Transport`] so the caller always gets a structured error.
    pub fn to_exec_error(code: u16, aux0: u64, aux1: u64, text: String) -> ExecError {
        if code == CODE_MALFORMED {
            return ExecError::Transport(format!("server rejected the frame as malformed: {text}"));
        }
        ExecError::from_code(code, aux0, aux1, text.clone())
            .unwrap_or_else(|| ExecError::Transport(format!("unknown error code {code}: {text}")))
    }
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// `f64`s travel as raw IEEE-754 bits: encode/decode is exact for every value,
/// including negative zero and NaN payloads (which validation, not the codec,
/// rejects) — a lossy float codec would break the bit-identity contract.
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_len(out: &mut Vec<u8>, len: usize) {
    debug_assert!(
        len <= u32::MAX as usize,
        "length fields are u32 on the wire"
    );
    put_u32(out, len as u32);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked payload cursor.  Every read checks the remaining byte count first;
/// every collection decode bounds its element count by the bytes actually present, so
/// a hostile length field can never size an allocation beyond the (already capped)
/// payload it arrived in.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = Result<T, &'static str>;

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err("truncated payload");
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> DecodeResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> DecodeResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err("boolean byte out of range"),
        }
    }

    /// Reads a collection length and checks it against the bytes remaining, given a
    /// lower bound on each element's encoded size.
    fn len(&mut self, min_element_size: usize) -> DecodeResult<usize> {
        let count = self.u32()? as usize;
        match count.checked_mul(min_element_size.max(1)) {
            Some(needed) if needed <= self.remaining() => Ok(count),
            _ => Err("length field exceeds payload"),
        }
    }

    fn str(&mut self) -> DecodeResult<String> {
        let len = self.len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8")
    }

    fn finish(self) -> DecodeResult<()> {
        if self.remaining() != 0 {
            return Err("trailing bytes after payload");
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Domain encoding
// ---------------------------------------------------------------------------

fn put_caps(out: &mut Vec<u8>, caps: &BackendCaps) {
    let mut bits = 0u8;
    for (i, flag) in [
        caps.batch,
        caps.shots,
        caps.noise,
        caps.trajectories,
        caps.retry_safe,
    ]
    .into_iter()
    .enumerate()
    {
        if flag {
            bits |= 1 << i;
        }
    }
    put_u8(out, bits);
}

fn get_caps(c: &mut Cursor<'_>) -> DecodeResult<BackendCaps> {
    let bits = c.u8()?;
    if bits & !0b1_1111 != 0 {
        return Err("unknown capability bits");
    }
    Ok(BackendCaps {
        batch: bits & 1 != 0,
        shots: bits & 2 != 0,
        noise: bits & 4 != 0,
        trajectories: bits & 8 != 0,
        retry_safe: bits & 16 != 0,
    })
}

fn put_angle(out: &mut Vec<u8>, angle: &qcircuit::Angle) {
    match *angle {
        qcircuit::Angle::Fixed(v) => {
            put_u8(out, 0);
            put_f64(out, v);
        }
        qcircuit::Angle::Param { index, multiplier } => {
            put_u8(out, 1);
            put_u32(out, index as u32);
            put_f64(out, multiplier);
        }
    }
}

fn get_angle(c: &mut Cursor<'_>) -> DecodeResult<qcircuit::Angle> {
    match c.u8()? {
        0 => Ok(qcircuit::Angle::Fixed(c.f64()?)),
        1 => {
            let index = c.u32()? as usize;
            let multiplier = c.f64()?;
            Ok(qcircuit::Angle::Param { index, multiplier })
        }
        _ => Err("unknown angle tag"),
    }
}

fn put_pauli_string(out: &mut Vec<u8>, s: &PauliString) {
    put_u64(out, s.x_mask());
    put_u64(out, s.z_mask());
    put_u32(out, s.num_qubits() as u32);
}

/// `PauliString::from_masks` panics on out-of-range masks, so the invariants are
/// re-checked here first — the untrusted boundary never feeds a panicking
/// constructor.
fn get_pauli_string(c: &mut Cursor<'_>) -> DecodeResult<PauliString> {
    let x_mask = c.u64()?;
    let z_mask = c.u64()?;
    let num_qubits = c.u32()? as usize;
    if num_qubits > PauliString::MAX_QUBITS {
        return Err("pauli register exceeds 64 qubits");
    }
    if num_qubits < 64 {
        let valid = (1u64 << num_qubits) - 1;
        if x_mask & !valid != 0 || z_mask & !valid != 0 {
            return Err("pauli mask has bits outside its register");
        }
    }
    Ok(PauliString::from_masks(x_mask, z_mask, num_qubits))
}

fn put_gate(out: &mut Vec<u8>, gate: &Gate) {
    match gate {
        Gate::H(q) => {
            put_u8(out, 1);
            put_u32(out, *q as u32);
        }
        Gate::X(q) => {
            put_u8(out, 2);
            put_u32(out, *q as u32);
        }
        Gate::Y(q) => {
            put_u8(out, 3);
            put_u32(out, *q as u32);
        }
        Gate::Z(q) => {
            put_u8(out, 4);
            put_u32(out, *q as u32);
        }
        Gate::S(q) => {
            put_u8(out, 5);
            put_u32(out, *q as u32);
        }
        Gate::Sdg(q) => {
            put_u8(out, 6);
            put_u32(out, *q as u32);
        }
        Gate::Cx(control, target) => {
            put_u8(out, 7);
            put_u32(out, *control as u32);
            put_u32(out, *target as u32);
        }
        Gate::Cz(control, target) => {
            put_u8(out, 8);
            put_u32(out, *control as u32);
            put_u32(out, *target as u32);
        }
        Gate::Rx(q, angle) => {
            put_u8(out, 9);
            put_u32(out, *q as u32);
            put_angle(out, angle);
        }
        Gate::Ry(q, angle) => {
            put_u8(out, 10);
            put_u32(out, *q as u32);
            put_angle(out, angle);
        }
        Gate::Rz(q, angle) => {
            put_u8(out, 11);
            put_u32(out, *q as u32);
            put_angle(out, angle);
        }
        Gate::PauliRotation(string, angle) => {
            put_u8(out, 12);
            put_pauli_string(out, string);
            put_angle(out, angle);
        }
    }
}

fn get_gate(c: &mut Cursor<'_>) -> DecodeResult<Gate> {
    let tag = c.u8()?;
    Ok(match tag {
        1 => Gate::H(c.u32()? as usize),
        2 => Gate::X(c.u32()? as usize),
        3 => Gate::Y(c.u32()? as usize),
        4 => Gate::Z(c.u32()? as usize),
        5 => Gate::S(c.u32()? as usize),
        6 => Gate::Sdg(c.u32()? as usize),
        7 => Gate::Cx(c.u32()? as usize, c.u32()? as usize),
        8 => Gate::Cz(c.u32()? as usize, c.u32()? as usize),
        9 => Gate::Rx(c.u32()? as usize, get_angle(c)?),
        10 => Gate::Ry(c.u32()? as usize, get_angle(c)?),
        11 => Gate::Rz(c.u32()? as usize, get_angle(c)?),
        12 => Gate::PauliRotation(get_pauli_string(c)?, get_angle(c)?),
        _ => return Err("unknown gate tag"),
    })
}

fn put_circuit(out: &mut Vec<u8>, circuit: &Circuit) {
    put_u32(out, circuit.num_qubits() as u32);
    put_len(out, circuit.num_gates());
    for gate in circuit.gates() {
        put_gate(out, gate);
    }
}

fn get_circuit(c: &mut Cursor<'_>) -> DecodeResult<Circuit> {
    let num_qubits = c.u32()? as usize;
    if num_qubits > PauliString::MAX_QUBITS {
        // `EvalJob::validate` enforces the (smaller) service cap with a structured
        // error; the codec only refuses registers nothing downstream can represent.
        return Err("circuit register exceeds 64 qubits");
    }
    let mut circuit = Circuit::new(num_qubits);
    // Each gate is at least 5 bytes (tag + one u32).
    let count = c.len(5)?;
    for _ in 0..count {
        let gate = get_gate(c)?;
        if let Gate::PauliRotation(string, _) = &gate {
            if string.num_qubits() != num_qubits {
                return Err("pauli rotation register differs from the circuit's");
            }
        }
        // `try_push` re-validates qubit indices against the register, so a hostile
        // gate on qubit 2^31 is a decode error here, not a panic in a kernel.
        circuit
            .try_push(gate)
            .map_err(|_| "gate touches a qubit outside the register")?;
    }
    Ok(circuit)
}

fn put_op(out: &mut Vec<u8>, op: &PauliOp) {
    put_u32(out, op.num_qubits() as u32);
    put_len(out, op.num_terms());
    for term in op.terms() {
        put_u64(out, term.string.x_mask());
        put_u64(out, term.string.z_mask());
        put_f64(out, term.coefficient);
    }
}

/// Terms are rebuilt exactly as encoded — no simplification, no merging — so the
/// decoded operator's term order (and therefore its floating-point summation order)
/// is identical to the sender's: remote evaluation stays bit-identical to local.
fn get_op(c: &mut Cursor<'_>) -> DecodeResult<PauliOp> {
    let num_qubits = c.u32()? as usize;
    if num_qubits > PauliString::MAX_QUBITS {
        return Err("operator register exceeds 64 qubits");
    }
    let valid = if num_qubits < 64 {
        (1u64 << num_qubits) - 1
    } else {
        u64::MAX
    };
    let count = c.len(20)?;
    let mut op = PauliOp::zero(num_qubits);
    for _ in 0..count {
        let x_mask = c.u64()?;
        let z_mask = c.u64()?;
        let coefficient = c.f64()?;
        if x_mask & !valid != 0 || z_mask & !valid != 0 {
            return Err("pauli mask has bits outside its register");
        }
        op.add_term(
            PauliString::from_masks(x_mask, z_mask, num_qubits),
            coefficient,
        );
    }
    Ok(op)
}

fn put_initial(out: &mut Vec<u8>, initial: &InitialState) {
    match initial {
        InitialState::Basis(b) => {
            put_u8(out, 0);
            put_u64(out, *b);
        }
        InitialState::UniformSuperposition => put_u8(out, 1),
    }
}

fn get_initial(c: &mut Cursor<'_>) -> DecodeResult<InitialState> {
    match c.u8()? {
        0 => Ok(InitialState::Basis(c.u64()?)),
        1 => Ok(InitialState::UniformSuperposition),
        _ => Err("unknown initial-state tag"),
    }
}

fn put_opts(out: &mut Vec<u8>, opts: &SubmitOptions, job_stream: Option<StreamId>) {
    match &opts.backend {
        Some(name) => {
            put_u8(out, 1);
            put_str(out, name);
        }
        None => put_u8(out, 0),
    }
    put_u32(out, opts.priority as u32);
    put_caps(out, &opts.require);
    put_u32(out, opts.retries);
    put_u8(out, opts.failover as u8);
    // The determinism pin: the options stream wins over the job's (mirroring
    // admission), and whichever is set travels as its raw u64 key.
    match opts.rng_stream.or(job_stream) {
        Some(stream) => {
            put_u8(out, 1);
            put_u64(out, stream.raw());
        }
        None => put_u8(out, 0),
    }
}

fn get_opts(c: &mut Cursor<'_>) -> DecodeResult<SubmitOptions> {
    let backend = match c.u8()? {
        0 => None,
        1 => Some(c.str()?),
        _ => return Err("unknown backend tag"),
    };
    let priority = c.u32()? as i32;
    let require = get_caps(c)?;
    let retries = c.u32()?;
    let failover = c.bool()?;
    let rng_stream = match c.u8()? {
        0 => None,
        1 => Some(StreamId::from_raw(c.u64()?)),
        _ => return Err("unknown rng-stream tag"),
    };
    Ok(SubmitOptions {
        backend,
        priority,
        require,
        retries,
        failover,
        rng_stream,
    })
}

fn put_job(out: &mut Vec<u8>, job: &EvalJob) {
    put_circuit(out, &job.circuit);
    put_len(out, job.params.len());
    for p in &job.params {
        put_f64(out, *p);
    }
    put_initial(out, &job.initial);
    put_op(out, &job.charged_op);
    put_len(out, job.free_ops.len());
    for op in &job.free_ops {
        put_op(out, op);
    }
}

fn get_job(c: &mut Cursor<'_>) -> DecodeResult<EvalJob> {
    let circuit = get_circuit(c)?;
    let param_count = c.len(8)?;
    let mut params = Vec::with_capacity(param_count);
    for _ in 0..param_count {
        params.push(c.f64()?);
    }
    let initial = get_initial(c)?;
    let charged_op = get_op(c)?;
    // Each op is at least 8 bytes (register + empty term list).
    let free_count = c.len(8)?;
    let mut free_ops = Vec::with_capacity(free_count);
    for _ in 0..free_count {
        free_ops.push(Arc::new(get_op(c)?));
    }
    Ok(
        EvalJob::new(Arc::new(circuit), params, initial, Arc::new(charged_op))
            .with_free_ops(free_ops),
    )
}

fn put_submit_entry(out: &mut Vec<u8>, entry: &SubmitFrame) {
    put_u64(out, entry.request_id);
    put_u8(out, entry.probe as u8);
    put_opts(out, &entry.opts, entry.job.rng_stream);
    put_job(out, &entry.job);
}

fn get_submit_entry(c: &mut Cursor<'_>) -> DecodeResult<SubmitFrame> {
    let request_id = c.u64()?;
    let probe = c.bool()?;
    let opts = get_opts(c)?;
    let job = get_job(c)?;
    Ok(SubmitFrame {
        request_id,
        probe,
        opts,
        job,
    })
}

fn put_result(out: &mut Vec<u8>, result: &EvalResult) {
    put_f64(out, result.charged);
    put_len(out, result.free.len());
    for v in &result.free {
        put_f64(out, *v);
    }
    put_u64(out, result.shots);
}

fn get_result(c: &mut Cursor<'_>) -> DecodeResult<EvalResult> {
    let charged = c.f64()?;
    let free_count = c.len(8)?;
    let mut free = Vec::with_capacity(free_count);
    for _ in 0..free_count {
        free.push(c.f64()?);
    }
    let shots = c.u64()?;
    Ok(EvalResult {
        charged,
        free,
        shots,
    })
}

// ---------------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------------

fn frame_type_and_id(frame: &Frame) -> (u8, u64) {
    match frame {
        Frame::Submit(entry) => (TYPE_SUBMIT, entry.request_id),
        Frame::SubmitBatch(entries) => (
            TYPE_SUBMIT_BATCH,
            entries.first().map_or(0, |e| e.request_id),
        ),
        Frame::Result { request_id, .. } => (TYPE_RESULT, *request_id),
        Frame::Error { request_id, .. } => (TYPE_ERROR, *request_id),
        Frame::Control(_) => (TYPE_CONTROL, 0),
    }
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    match frame {
        Frame::Submit(entry) => put_submit_entry(&mut out, entry),
        Frame::SubmitBatch(entries) => {
            put_len(&mut out, entries.len());
            for entry in entries {
                put_submit_entry(&mut out, entry);
            }
        }
        Frame::Result { result, .. } => put_result(&mut out, result),
        Frame::Error {
            code,
            aux0,
            aux1,
            text,
            ..
        } => {
            put_u16(&mut out, *code);
            put_u64(&mut out, *aux0);
            put_u64(&mut out, *aux1);
            put_str(&mut out, text);
        }
        Frame::Control(kind) => put_u8(
            &mut out,
            match kind {
                ControlKind::OverCapacity => 1,
                ControlKind::ShuttingDown => 2,
            },
        ),
    }
    out
}

fn decode_payload(frame_type: u8, request_id: u64, payload: &[u8]) -> Result<Frame, WireError> {
    let malformed = |reason| WireError::Malformed { request_id, reason };
    let mut c = Cursor::new(payload);
    let frame = (|c: &mut Cursor<'_>| -> DecodeResult<Frame> {
        Ok(match frame_type {
            TYPE_SUBMIT => Frame::Submit(get_submit_entry(c)?),
            TYPE_SUBMIT_BATCH => {
                // Each entry is at least 9 bytes (id + probe flag) before its body.
                let count = c.len(9)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(get_submit_entry(c)?);
                }
                Frame::SubmitBatch(entries)
            }
            TYPE_RESULT => Frame::Result {
                request_id,
                result: get_result(c)?,
            },
            TYPE_ERROR => Frame::Error {
                request_id,
                code: c.u16()?,
                aux0: c.u64()?,
                aux1: c.u64()?,
                text: c.str()?,
            },
            TYPE_CONTROL => Frame::Control(match c.u8()? {
                1 => ControlKind::OverCapacity,
                2 => ControlKind::ShuttingDown,
                _ => return Err("unknown control kind"),
            }),
            _ => unreachable!("frame type validated by read_frame"),
        })
    })(&mut c)
    .map_err(malformed)?;
    c.finish().map_err(malformed)?;
    Ok(frame)
}

/// Writes one frame, returning the bytes written (header + payload).  Refuses (with
/// [`WireError::FrameTooLarge`]) to emit a payload above `max_frame`, so a writer can
/// never produce a frame its symmetric reader would reject.
pub fn write_frame(
    w: &mut impl Write,
    frame: &Frame,
    max_frame: usize,
) -> Result<usize, WireError> {
    let payload = encode_payload(frame);
    if payload.len() > max_frame {
        return Err(WireError::FrameTooLarge {
            len: payload.len(),
            max: max_frame,
        });
    }
    let (frame_type, request_id) = frame_type_and_id(frame);
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4] = VERSION;
    header[5] = frame_type;
    header[6..14].copy_from_slice(&request_id.to_le_bytes());
    header[14..18].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&payload)?;
    Ok(HEADER_LEN + payload.len())
}

/// Reads one frame, enforcing `max_frame` before buffering the payload.
///
/// Header-level failures ([`WireError::BadMagic`], [`WireError::UnsupportedVersion`],
/// [`WireError::UnknownFrameType`], [`WireError::FrameTooLarge`], [`WireError::Io`])
/// mean the stream can no longer be trusted to be frame-aligned — close the
/// connection.  [`WireError::Malformed`] means the frame was read in full but its
/// payload failed to decode — the stream is still synced and the peer can be
/// answered with a [`CODE_MALFORMED`] error frame.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = header[4];
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let frame_type = header[5];
    if !(TYPE_SUBMIT..=TYPE_CONTROL).contains(&frame_type) {
        return Err(WireError::UnknownFrameType(frame_type));
    }
    let request_id = u64::from_le_bytes(header[6..14].try_into().unwrap());
    let payload_len = u32::from_le_bytes(header[14..18].try_into().unwrap()) as usize;
    if payload_len > max_frame {
        return Err(WireError::FrameTooLarge {
            len: payload_len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; payload_len];
    r.read_exact(&mut payload)?;
    decode_payload(frame_type, request_id, &payload)
}
