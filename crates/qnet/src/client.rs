//! The remote client: the executor's blocking submit/handle API over a TCP
//! connection.
//!
//! A [`NetClient`] speaks the [`crate::wire`] protocol to a [`crate::NetServer`] and
//! hands back [`RemoteHandle`]s with the same blocking surface as a local
//! [`qexec::JobHandle`] (`wait` / `wait_timeout` / `try_result`).  A single
//! demultiplexer thread reads response frames and routes each to its pending request
//! by id, so any number of threads can share one client and any number of requests
//! can be in flight, completing out of order.  Because [`NetClient`] implements
//! [`qexec::JobSubmitter`], the `vqa`-level drivers ([`qexec::run_single_vqa`],
//! [`qexec::drive_optimizer_iteration`]) run against a remote executor unchanged —
//! and, by the schedule-independence contract, produce bit-identical results doing
//! so.
//!
//! Connection failure is structural: if the server shuts down, refuses the
//! connection at capacity, or the transport drops, every pending and future request
//! resolves with a structured [`ExecError`] (`ShutDown` / `Overloaded` /
//! `Transport`) — a remote handle never hangs on a dead connection.

use crate::wire::{self, ControlKind, Frame, SubmitFrame};
use qexec::{CompletionHandle, EvalJob, ExecError, JobSubmitter, SubmitOptions};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vqa::EvalResult;

/// A connection to a remote executor; see the [module docs](self).
pub struct NetClient {
    shared: Arc<ClientShared>,
    demux: Option<JoinHandle<()>>,
}

struct ClientShared {
    writer: Mutex<TcpStream>,
    stream: TcpStream,
    pending: Mutex<HashMap<u64, Pending>>,
    next_id: AtomicU64,
    max_frame: usize,
    /// Set once when the connection dies, with the error every subsequent submission
    /// reports.
    closed: Mutex<Option<ExecError>>,
    /// Submit→complete round-trip latency over the wire, in nanoseconds.
    rtt: qobs::Histogram,
}

struct Pending {
    state: Arc<RemoteState>,
    submitted: Instant,
}

#[derive(Default)]
struct RemoteState {
    slot: Mutex<Option<Result<EvalResult, ExecError>>>,
    cv: Condvar,
}

impl RemoteState {
    fn complete(&self, result: Result<EvalResult, ExecError>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.cv.notify_all();
    }
}

impl NetClient {
    /// Connects to a server with the default frame cap ([`wire::DEFAULT_MAX_FRAME`]).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        NetClient::connect_with(addr, wire::DEFAULT_MAX_FRAME)
    }

    /// [`NetClient::connect`] with an explicit frame cap (both directions: larger
    /// incoming frames are refused, larger outgoing submissions fail with
    /// [`ExecError::Transport`] before anything is written).
    pub fn connect_with(addr: impl ToSocketAddrs, max_frame: usize) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let demux_stream = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            writer: Mutex::new(writer),
            stream,
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            max_frame,
            closed: Mutex::new(None),
            rtt: qobs::Histogram::new(),
        });
        let demux_shared = Arc::clone(&shared);
        let demux = std::thread::Builder::new()
            .name("qnet-client-demux".into())
            .spawn(move || demux_loop(demux_stream, demux_shared))
            .expect("spawn qnet demux thread");
        Ok(NetClient {
            shared,
            demux: Some(demux),
        })
    }

    /// The connection's local address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.shared.stream.local_addr()
    }

    /// Submits a job to the remote default backend at default priority.
    pub fn submit(&self, job: EvalJob) -> Result<RemoteHandle, ExecError> {
        self.submit_with(job, &SubmitOptions::default())
    }

    /// Submits a job with explicit options (mirrors [`qexec::ExecClient::submit_with`];
    /// the options' `rng_stream` pin travels on the wire, so a remotely pinned job is
    /// bit-identical to the same job pinned locally).
    pub fn submit_with(
        &self,
        job: EvalJob,
        opts: &SubmitOptions,
    ) -> Result<RemoteHandle, ExecError> {
        self.submit_inner(job, opts, false)
    }

    /// Submits an uncharged probe (mirrors [`qexec::ExecClient::submit_probe`]).
    pub fn submit_probe(&self, job: EvalJob) -> Result<RemoteHandle, ExecError> {
        self.submit_probe_with(job, &SubmitOptions::default())
    }

    /// [`NetClient::submit_probe`] with explicit options.
    pub fn submit_probe_with(
        &self,
        job: EvalJob,
        opts: &SubmitOptions,
    ) -> Result<RemoteHandle, ExecError> {
        self.submit_inner(job, opts, true)
    }

    /// Submits a group of jobs as **one batch frame**: the server pauses its executor
    /// around the group, so the jobs coalesce into a single scheduling slate exactly
    /// like a local [`qexec::ExecClient::submit_all`].  Per-job refusals resolve
    /// through the returned handles (the server withdraws the group's accepted jobs
    /// first); this call itself only fails if nothing could be sent.
    pub fn submit_group(&self, jobs: Vec<EvalJob>) -> Result<Vec<RemoteHandle>, ExecError> {
        for job in &jobs {
            job.validate()?;
        }
        self.check_open()?;
        let entries: Vec<(u64, EvalJob)> = jobs
            .into_iter()
            .map(|job| (self.shared.next_id.fetch_add(1, Ordering::Relaxed), job))
            .collect();
        let mut handles = Vec::with_capacity(entries.len());
        {
            let mut pending = self.shared.pending.lock().unwrap();
            let now = Instant::now();
            for (id, _) in &entries {
                let state = Arc::new(RemoteState::default());
                pending.insert(
                    *id,
                    Pending {
                        state: Arc::clone(&state),
                        submitted: now,
                    },
                );
                handles.push(RemoteHandle {
                    state,
                    request_id: *id,
                });
            }
        }
        let frame = Frame::SubmitBatch(
            entries
                .into_iter()
                .map(|(request_id, job)| SubmitFrame {
                    request_id,
                    probe: false,
                    opts: SubmitOptions::default(),
                    job,
                })
                .collect(),
        );
        if let Err(err) = self.write(&frame) {
            let mut pending = self.shared.pending.lock().unwrap();
            for handle in &handles {
                pending.remove(&handle.request_id);
            }
            return Err(err);
        }
        Ok(handles)
    }

    /// The wire round-trip latency histogram (submit → completion frame received),
    /// in nanoseconds.
    pub fn rtt(&self) -> qobs::HistogramSnapshot {
        self.shared.rtt.snapshot()
    }

    /// Whether the connection has died (server shutdown, over-capacity refusal, or
    /// transport failure).  Pending and future requests resolve with the structured
    /// error that killed it.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.lock().unwrap().is_some()
    }

    fn check_open(&self) -> Result<(), ExecError> {
        match &*self.shared.closed.lock().unwrap() {
            Some(err) => Err(err.clone()),
            None => Ok(()),
        }
    }

    fn submit_inner(
        &self,
        job: EvalJob,
        opts: &SubmitOptions,
        probe: bool,
    ) -> Result<RemoteHandle, ExecError> {
        // Validate before spending a round trip — the same structured errors, at the
        // same point in the submission, as the local client.
        job.validate()?;
        self.check_open()?;
        let request_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(RemoteState::default());
        self.shared.pending.lock().unwrap().insert(
            request_id,
            Pending {
                state: Arc::clone(&state),
                submitted: Instant::now(),
            },
        );
        let frame = Frame::Submit(SubmitFrame {
            request_id,
            probe,
            opts: opts.clone(),
            job,
        });
        if let Err(err) = self.write(&frame) {
            self.shared.pending.lock().unwrap().remove(&request_id);
            return Err(err);
        }
        Ok(RemoteHandle { state, request_id })
    }

    fn write(&self, frame: &Frame) -> Result<(), ExecError> {
        let mut writer = self.shared.writer.lock().unwrap();
        wire::write_frame(&mut *writer, frame, self.shared.max_frame)
            .and_then(|_| writer.flush().map_err(wire::WireError::Io))
            .map_err(|e| ExecError::Transport(e.to_string()))
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        // Closing the socket unblocks the demultiplexer, which fails any pending
        // requests (other threads may still hold their handles) and exits.
        let _ = self.shared.stream.shutdown(Shutdown::Both);
        if let Some(demux) = self.demux.take() {
            let _ = demux.join();
        }
    }
}

fn demux_loop(mut stream: TcpStream, shared: Arc<ClientShared>) {
    let reason = loop {
        match wire::read_frame(&mut stream, shared.max_frame) {
            Ok(Frame::Result { request_id, result }) => complete(&shared, request_id, Ok(result)),
            Ok(Frame::Error {
                request_id,
                code,
                aux0,
                aux1,
                text,
            }) => complete(
                &shared,
                request_id,
                Err(Frame::to_exec_error(code, aux0, aux1, text)),
            ),
            Ok(Frame::Control(ControlKind::ShuttingDown)) => break ExecError::ShutDown,
            Ok(Frame::Control(ControlKind::OverCapacity)) => break ExecError::Overloaded,
            Ok(Frame::Submit(_) | Frame::SubmitBatch(_)) => {
                break ExecError::Transport("server sent a client-only frame".to_string())
            }
            Err(e) => break ExecError::Transport(e.to_string()),
        }
    };
    // The connection is gone: fail everything pending and everything yet to come
    // with the structured reason, so no handle ever hangs.
    *shared.closed.lock().unwrap() = Some(reason.clone());
    let drained: Vec<Pending> = shared
        .pending
        .lock()
        .unwrap()
        .drain()
        .map(|(_, p)| p)
        .collect();
    for pending in drained {
        pending.state.complete(Err(reason.clone()));
    }
}

fn complete(shared: &ClientShared, request_id: u64, result: Result<EvalResult, ExecError>) {
    let pending = shared.pending.lock().unwrap().remove(&request_id);
    if let Some(pending) = pending {
        let elapsed = pending.submitted.elapsed().as_nanos();
        shared.rtt.record(elapsed.min(u128::from(u64::MAX)) as u64);
        pending.state.complete(result);
    }
}

/// A handle to a remotely submitted job: the same blocking completion surface as a
/// local [`qexec::JobHandle`].
#[derive(Debug)]
pub struct RemoteHandle {
    state: Arc<RemoteState>,
    request_id: u64,
}

impl std::fmt::Debug for RemoteState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteState")
            .field("slot", &self.slot)
            .finish()
    }
}

impl RemoteHandle {
    /// Blocks until the job completes (or the connection dies) and returns its
    /// result.
    pub fn wait(&self) -> Result<EvalResult, ExecError> {
        let mut slot = self.state.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.state.cv.wait(slot).unwrap();
        }
        slot.as_ref().unwrap().clone()
    }

    /// Blocks until the job completes or `timeout` elapses (`None` on timeout; the
    /// request stays pending and can be waited on again).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<EvalResult, ExecError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.slot.lock().unwrap();
        while slot.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.state.cv.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
        }
        Some(slot.as_ref().unwrap().clone())
    }

    /// The job's result if it has already completed (non-blocking).
    pub fn try_result(&self) -> Option<Result<EvalResult, ExecError>> {
        self.state.slot.lock().unwrap().clone()
    }

    /// Whether the job has completed (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.state.slot.lock().unwrap().is_some()
    }

    /// The connection-scoped request id this handle is waiting on.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }
}

impl CompletionHandle for RemoteHandle {
    fn wait(&self) -> Result<EvalResult, ExecError> {
        RemoteHandle::wait(self)
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<EvalResult, ExecError>> {
        RemoteHandle::wait_timeout(self, timeout)
    }

    fn try_result(&self) -> Option<Result<EvalResult, ExecError>> {
        RemoteHandle::try_result(self)
    }

    fn is_finished(&self) -> bool {
        RemoteHandle::is_finished(self)
    }
}

impl JobSubmitter for NetClient {
    type Handle = RemoteHandle;

    fn submit_job(&self, job: EvalJob, opts: &SubmitOptions) -> Result<RemoteHandle, ExecError> {
        self.submit_with(job, opts)
    }

    fn submit_probe_job(
        &self,
        job: EvalJob,
        opts: &SubmitOptions,
    ) -> Result<RemoteHandle, ExecError> {
        self.submit_probe_with(job, opts)
    }

    fn submit_job_group(&self, jobs: Vec<EvalJob>) -> Result<Vec<RemoteHandle>, ExecError> {
        self.submit_group(jobs)
    }
}
