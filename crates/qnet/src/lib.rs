//! qnet: the network serving layer — the execution service over TCP.
//!
//! Everything below `qexec` is a library: the executor, the backends, the samplers
//! all live in the caller's process.  This crate puts the executor behind a socket
//! so a fleet of drivers can share one, in three layers:
//!
//! * [`wire`] — a versioned, length-prefixed binary codec for jobs, submit options,
//!   results, and structured errors.  This is the system's first untrusted-input
//!   boundary: every decode is bounds-checked, frames are capped
//!   ([`wire::DEFAULT_MAX_FRAME`], tunable via `QNET_MAX_FRAME`), and malformed
//!   payloads produce recoverable errors, never panics.
//! * [`server`] — a [`NetServer`] binding a `TcpListener` over an
//!   [`std::sync::Arc`]`<`[`qexec::Executor`]`>`.  Each connection maps to one
//!   [`qexec::ExecClient`], so the executor's fair round-robin and per-client
//!   admission apply **per connection**.  Completions are pushed out of order as
//!   request-id-tagged frames; rejections travel as structured error frames, not
//!   dropped connections; shutdown drains in-flight work before closing.
//! * [`client`] — a [`NetClient`] with the local client's blocking submit/handle
//!   API ([`RemoteHandle`]`::{wait, wait_timeout, try_result}`), backed by a
//!   demultiplexer thread.  It implements [`qexec::JobSubmitter`], so `vqa`-level
//!   drivers run against a remote executor unchanged.
//!
//! Determinism crosses the wire: [`qexec::SubmitOptions::rng_stream`] is part of
//! the submit frame, so a job pinned to a [`qrng::StreamId`] draws the same
//! randomness whether it runs in-process or on a server three hops away.  The
//! schedule-independence contract (PR 9) does the rest — results are bit-identical
//! regardless of which connection, worker, or interleaving carried the job.
//!
//! ```no_run
//! use qexec::{EvalJob, Executor};
//! use qnet::{NetClient, NetServer};
//! use std::sync::Arc;
//! use vqa::StatevectorBackend;
//!
//! # fn job() -> EvalJob { unimplemented!() }
//! let executor = Arc::new(Executor::builder().register("sv", StatevectorBackend::new()).start());
//! let server = NetServer::bind("127.0.0.1:0", executor).unwrap();
//! let client = NetClient::connect(server.local_addr()).unwrap();
//! let result = client.submit(job()).unwrap().wait().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{NetClient, RemoteHandle};
pub use server::{NetServer, NetServerBuilder};
pub use wire::{Frame, WireError};

/// The bind address for a serving process from `QNET_ADDR` (default
/// `127.0.0.1:0`: loopback, OS-assigned port).  The library itself never reads
/// this — [`NetServer::bind`] takes an explicit address — but serving binaries
/// (`qnet_serve`) use it so deployments choose the listen interface without a
/// flag parser.
pub fn addr_from_env() -> String {
    std::env::var("QNET_ADDR")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| "127.0.0.1:0".to_string())
}

/// Maximum simultaneous connections from `QNET_MAX_CONNS` (default 64; values
/// below 1 are clamped to 1).  Connections beyond the cap receive a polite
/// over-capacity control frame and are closed, rather than hanging in the accept
/// backlog.
pub fn max_conns_from_env() -> usize {
    std::env::var("QNET_MAX_CONNS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|v| v.max(1))
        .unwrap_or(64)
}

/// Maximum frame size in bytes from `QNET_MAX_FRAME` (default
/// [`wire::DEFAULT_MAX_FRAME`]; values below 1024 are clamped to 1024 so headers
/// and error frames always fit).
pub fn max_frame_from_env() -> usize {
    std::env::var("QNET_MAX_FRAME")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|v| v.max(1024))
        .unwrap_or(wire::DEFAULT_MAX_FRAME)
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_helpers_defaults() {
        // Note: relies on the vars being unset in the test environment; the CI net
        // job sets them only for the dedicated tuning tests.
        assert_eq!(super::max_conns_from_env(), 64);
        assert_eq!(super::max_frame_from_env(), super::wire::DEFAULT_MAX_FRAME);
        assert_eq!(super::addr_from_env(), "127.0.0.1:0");
    }
}
