//! Shared benchmark workload builders.
//!
//! The criterion benches (`benches/kernels.rs`, `benches/batch.rs`, `benches/noise.rs`)
//! and the deterministic quick-bench mode ([`crate::quick`]) must measure **the same**
//! states, strings, Hamiltonians and ansätze — otherwise the CI perf gate would compare
//! apples to oranges against the checked-in `BENCH_*.json` baselines.  Every workload
//! they share is built here and nowhere else.

use qcircuit::{Angle, Circuit, Gate};
use qop::{Complex64, PauliOp, PauliString, Statevector};

/// A dense normalized state with structure on every amplitude.
pub fn dense_state(num_qubits: usize) -> Statevector {
    let dim = 1usize << num_qubits;
    let mut psi = Statevector::from_amplitudes(
        (0..dim)
            .map(|i| Complex64::new((i as f64 * 0.137).sin() + 0.2, (i as f64 * 0.291).cos()))
            .collect(),
    );
    psi.normalize();
    psi
}

/// A Jordan–Wigner double-excitation string — the shape every UCCSD Pauli rotation in
/// the hot path actually has: X/Y on four spread orbital sites, Z-chains between them.
pub fn uccsd_rotation_string(num_qubits: usize) -> PauliString {
    let sites = [0, num_qubits / 3, 2 * num_qubits / 3, num_qubits - 1];
    let label: String = (0..num_qubits)
        .map(|q| {
            if q == sites[0] || q == sites[2] {
                'X'
            } else if q == sites[1] || q == sites[3] {
                'Y'
            } else {
                'Z'
            }
        })
        .collect();
    PauliString::from_label(&label).unwrap()
}

/// A weight-heavy Pauli string mixing X, Y and Z across the register, the worst case for
/// the rotation kernel (dense phase logic, maximal x-mask span — every second qubit
/// contributes to the pair permutation).
pub fn mixed_rotation_string(num_qubits: usize) -> PauliString {
    let label: String = (0..num_qubits)
        .map(|q| match q % 4 {
            0 => 'X',
            1 => 'Z',
            2 => 'Y',
            _ => 'I',
        })
        .collect();
    PauliString::from_label(&label).unwrap()
}

/// A synthetic Hamiltonian with `2n` terms spanning diagonal and off-diagonal strings.
pub fn synthetic_hamiltonian(num_qubits: usize) -> PauliOp {
    let mut op = PauliOp::zero(num_qubits);
    for q in 0..num_qubits {
        // Diagonal ZZ chain (takes the diagonal fast path).
        let mut label = vec!['I'; num_qubits];
        label[q] = 'Z';
        label[(q + 1) % num_qubits] = 'Z';
        let zz: String = label.iter().collect();
        op.add_term(PauliString::from_label(&zz).unwrap(), 1.0 - 0.01 * q as f64);
        // Off-diagonal XY pair (general pairwise path).
        let mut label = vec!['I'; num_qubits];
        label[q] = 'X';
        label[(q + 2) % num_qubits] = 'Y';
        let xy: String = label.iter().collect();
        op.add_term(PauliString::from_label(&xy).unwrap(), 0.3 + 0.01 * q as f64);
    }
    op.simplify(0.0);
    op
}

/// A Pauli-rotation-heavy ansatz: QAOA-shaped layers of diagonal ZZ-chain rotations
/// (ring + chords, the diagonal-batching target) alternating with Rx mixers, preceded by
/// a Hadamard wall.  This is the gate mix the paper's MaxCut and spin-chain workloads
/// spend their time in.
pub fn rotation_heavy_ansatz(num_qubits: usize, layers: usize) -> Circuit {
    let mut circ = Circuit::new(num_qubits);
    for q in 0..num_qubits {
        circ.push(Gate::H(q));
    }
    let mut slot = 0usize;
    for _ in 0..layers {
        // Cost layer: ZZ ring plus next-nearest chords — all diagonal, one fused pass.
        for step in [1usize, 2] {
            for q in 0..num_qubits {
                let mut label = vec!['I'; num_qubits];
                label[q] = 'Z';
                label[(q + step) % num_qubits] = 'Z';
                let string = PauliString::from_label(&label.iter().collect::<String>()).unwrap();
                circ.push(Gate::PauliRotation(string, Angle::param(slot)));
                slot += 1;
            }
        }
        // Mixer layer.
        for q in 0..num_qubits {
            circ.push(Gate::Rx(q, Angle::param(slot)));
            slot += 1;
        }
    }
    circ
}

/// The standard parameter binding used across the benches.
pub fn ansatz_params(circ: &Circuit) -> Vec<f64> {
    (0..circ.num_parameters())
        .map(|i| (i as f64 * 0.37).sin())
        .collect()
}

/// The 12-qubit TFIM-style Hamiltonian of the batched-vs-serial comparison.
pub fn tfim_hamiltonian(num_qubits: usize) -> PauliOp {
    let mut terms: Vec<(String, f64)> = Vec::new();
    for q in 0..num_qubits {
        let mut zz = vec!['I'; num_qubits];
        zz[q] = 'Z';
        zz[(q + 1) % num_qubits] = 'Z';
        terms.push((zz.iter().collect(), -1.0));
        let mut x = vec!['I'; num_qubits];
        x[q] = 'X';
        terms.push((x.iter().collect(), 0.5));
    }
    let refs: Vec<(&str, f64)> = terms.iter().map(|(l, c)| (l.as_str(), *c)).collect();
    PauliOp::from_labels(num_qubits, &refs)
}

/// The ZZ-ring cost Hamiltonian of the trajectory-noise throughput bench.
pub fn zz_ring_hamiltonian(num_qubits: usize) -> PauliOp {
    let mut terms: Vec<(String, f64)> = Vec::new();
    for q in 0..num_qubits {
        let mut zz = vec!['I'; num_qubits];
        zz[q] = 'Z';
        zz[(q + 1) % num_qubits] = 'Z';
        terms.push((zz.iter().collect(), -1.0));
    }
    let refs: Vec<(&str, f64)> = terms.iter().map(|(l, c)| (l.as_str(), *c)).collect();
    PauliOp::from_labels(num_qubits, &refs)
}

/// The per-gate Pauli noise model shared by the noise bench and quick mode.
pub fn bench_noise_model() -> qnoise::PauliNoiseModel {
    qnoise::PauliNoiseModel::ibm_like("bench-device", 5e-4, 4e-3, 1e-3, 0.01)
}
