//! The TreeVQA experiment harness: regenerates every table and figure of the paper's
//! evaluation section at laptop scale.
//!
//! Usage:
//!
//! ```text
//! cargo run -p treevqa-bench --release --bin experiments -- <id> [<id> ...]
//! cargo run -p treevqa-bench --release --bin experiments -- all
//! ```
//!
//! where `<id>` is one of `tab1 fig4 fig6 fig7 fig8 fig9 fig10 fig11 tab2 fig12 fig13
//! fig14`.  Each experiment prints a human-readable summary and writes machine-readable
//! CSV under `results/`.  See EXPERIMENTS.md for the paper-vs-measured discussion and the
//! scaling notes.

use qchem::{MoleculeSpec, SpinChainFamily};
use qexec::Executor;
use qgraph::Ieee14Family;
use qop::{ground_state, LanczosOptions};
use qopt::{CobylaConfig, OptimizerSpec};
use qsim::{NoiseModel, PauliPropagatorConfig};
use treevqa::{SplitPolicy, TreeVqa, TreeVqaConfig};
use treevqa_bench::*;
use vqa::{
    cafqa_initialize, metrics, Backend, InitialState, NoisyBackend, PauliPropagationBackend,
    StatevectorBackend,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <tab1|fig4|fig6|fig7|fig8|fig9|fig10|fig11|tab2|fig12|fig13|fig14|all> ...");
        std::process::exit(2);
    }
    let all = [
        "tab1", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "tab2", "fig12", "fig13",
        "fig14",
    ];
    let requested: Vec<String> = if args.iter().any(|a| a == "all") {
        all.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    for id in requested {
        println!("\n================= {id} =================");
        match id.as_str() {
            "tab1" => tab1(),
            "fig4" => fig4(),
            "fig6" => fig6(),
            "fig7" => fig7(),
            "fig8" => fig8(),
            "fig9" => fig9(),
            "fig10" => fig10(),
            "fig11" => fig11(),
            "tab2" => tab2(),
            "fig12" => fig12(),
            "fig13" => fig13(),
            "fig14" => fig14(),
            other => eprintln!("unknown experiment id: {other}"),
        }
    }
}

/// Table 1: chemistry benchmark characteristics.
fn tab1() {
    println!("Table 1 — chemistry benchmarks (scaled reproduction)");
    println!(
        "{:<8} {:>8} {:>8} {:>16} {:>10}",
        "molecule", "qubits", "terms", "bond range (Å)", "eq (Å)"
    );
    let mut rows = Vec::new();
    for spec in MoleculeSpec::all_benchmarks() {
        let terms = spec.hamiltonian(spec.equilibrium_bond).num_terms();
        println!(
            "{:<8} {:>8} {:>8} {:>7.2}-{:<8.2} {:>10.3}",
            spec.name, spec.num_qubits, terms, spec.bond_min, spec.bond_max, spec.equilibrium_bond
        );
        rows.push(format!(
            "{},{},{},{},{},{}",
            spec.name, spec.num_qubits, terms, spec.bond_min, spec.bond_max, spec.equilibrium_bond
        ));
    }
    let path = write_csv(
        "tab1_benchmarks.csv",
        "molecule,qubits,terms,bond_min,bond_max,eq_bond",
        &rows,
    )
    .unwrap();
    println!("wrote {}", path.display());
}

/// Figure 4b/4c: ground-state overlap and Hamiltonian-similarity heatmaps for LiH.
fn fig4() {
    let molecule = MoleculeSpec::lih();
    let bonds = molecule.bond_lengths(10);
    println!(
        "Figure 4 — LiH similarity heatmaps over {} bond lengths",
        bonds.len()
    );
    let opts = LanczosOptions::default();
    let states: Vec<_> = bonds
        .iter()
        .map(|&b| ground_state(&molecule.hamiltonian(b), &opts).state)
        .collect();
    let hams: Vec<_> = bonds.iter().map(|&b| molecule.hamiltonian(b)).collect();
    let distances: Vec<Vec<f64>> = hams
        .iter()
        .map(|a| hams.iter().map(|b| a.l1_distance(b)).collect())
        .collect();
    let similarity = cluster::SimilarityMatrix::from_distances(&distances);

    let mut overlap_rows = Vec::new();
    let mut sim_rows = Vec::new();
    for i in 0..bonds.len() {
        let overlaps: Vec<String> = (0..bonds.len())
            .map(|j| format!("{:.4}", states[i].overlap(&states[j])))
            .collect();
        let sims: Vec<String> = (0..bonds.len())
            .map(|j| format!("{:.4}", similarity.get(i, j)))
            .collect();
        overlap_rows.push(format!("{:.3},{}", bonds[i], overlaps.join(",")));
        sim_rows.push(format!("{:.3},{}", bonds[i], sims.join(",")));
    }
    let header = format!(
        "bond,{}",
        bonds
            .iter()
            .map(|b| format!("{b:.3}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let p1 = write_csv("fig4b_ground_state_overlap.csv", &header, &overlap_rows).unwrap();
    let p2 = write_csv("fig4c_hamiltonian_similarity.csv", &header, &sim_rows).unwrap();
    // Shape check mirroring the paper: adjacent geometries overlap strongly, extremes less.
    let adjacent = states[0].overlap(&states[1]);
    let extremes = states[0].overlap(&states[bonds.len() - 1]);
    println!("adjacent-geometry ground-state overlap : {adjacent:.4}");
    println!("extreme-geometry ground-state overlap  : {extremes:.4}");
    println!("wrote {} and {}", p1.display(), p2.display());
}

fn vqe_panels(iterations: usize, optimizer: OptimizerSpec) -> Vec<(String, Comparison)> {
    BenchmarkId::all()
        .into_iter()
        .map(|id| {
            let num_tasks = if id == BenchmarkId::H2Uccsd { 5 } else { 6 };
            let app = build_benchmark(id, num_tasks);
            // Every evaluation below runs through the compiled ansatz (the backends
            // lower it once and re-bind θ per candidate); report the lowering.
            let stats = qsim::CompiledCircuit::compile(&app.ansatz).stats();
            println!(
                "  [{}] compiled ansatz: {} gates -> {} ops ({} fused chains, {} diagonal passes)",
                id.name(),
                stats.source_gates,
                stats.compiled_ops,
                stats.fused_chains,
                stats.diagonal_passes
            );
            let config = ComparisonConfig {
                iterations,
                optimizer: optimizer.clone(),
                ..Default::default()
            };
            let zeros = vec![0.0; app.num_parameters()];
            let comparison = run_comparison(&app, &zeros, &config);
            (id.name().to_string(), comparison)
        })
        .collect()
}

/// Figure 6: shots required to reach a fidelity target, TreeVQA vs separate VQE.
fn fig6() {
    println!("Figure 6 — shot reduction at fixed fidelity targets (SPSA)");
    let panels = vqe_panels(300, OptimizerSpec::default_spsa());
    let thresholds = [0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 0.98];
    let mut rows = Vec::new();
    for (name, comparison) in &panels {
        println!("\n  {name}");
        for &t in &thresholds {
            if let Some((baseline, tree, ratio)) = comparison.savings_at_threshold(t) {
                println!("    fidelity ≥ {t:.2}: baseline {baseline:>14}  treevqa {tree:>14}  savings {ratio:>6.1}x");
                rows.push(format!("{name},{t},{baseline},{tree},{ratio:.3}"));
            }
        }
        if let Some((t, _, _, ratio)) = comparison.best_common_threshold() {
            println!("    headline: {ratio:.1}x at fidelity {t:.2}");
        } else {
            println!("    headline: no common fidelity threshold reached");
        }
    }
    let path = write_csv(
        "fig6_shot_reduction.csv",
        "benchmark,fidelity_threshold,baseline_shots,treevqa_shots,savings",
        &rows,
    )
    .unwrap();
    println!("\nwrote {}", path.display());
}

/// Figure 7: fidelity achieved under a fixed shot budget.
fn fig7() {
    println!("Figure 7 — fidelity at fixed shot budgets (SPSA)");
    let panels = vqe_panels(300, OptimizerSpec::default_spsa());
    let mut rows = Vec::new();
    for (name, comparison) in &panels {
        println!("\n  {name}");
        let max_budget = comparison.baseline.total_shots;
        for frac in [0.05, 0.1, 0.2, 0.4, 0.7, 1.0] {
            let budget = (max_budget as f64 * frac) as u64;
            let (b, t) = comparison.fidelity_at_budget(budget);
            println!("    budget {budget:>14}: baseline {b:.4}  treevqa {t:.4}");
            rows.push(format!("{name},{budget},{b:.4},{t:.4}"));
        }
    }
    let path = write_csv(
        "fig7_fidelity_budget.csv",
        "benchmark,shot_budget,baseline_min_fidelity,treevqa_min_fidelity",
        &rows,
    )
    .unwrap();
    println!("\nwrote {}", path.display());
}

/// Figure 8: shot savings at increasing task precision (more, closer-spaced geometries).
fn fig8() {
    println!("Figure 8 — shot savings vs task precision");
    let mut rows = Vec::new();
    for molecule in [
        MoleculeSpec::hf(),
        MoleculeSpec::lih(),
        MoleculeSpec::beh2(),
    ] {
        println!("\n  {}", molecule.name);
        for &num_tasks in &[3usize, 5, 7, 10] {
            let span = molecule.bond_max - molecule.bond_min;
            let precision = span / (num_tasks.max(2) - 1) as f64;
            let app = molecule_application(&molecule, num_tasks, 2);
            let config = ComparisonConfig {
                iterations: 220,
                ..Default::default()
            };
            let zeros = vec![0.0; app.num_parameters()];
            let comparison = run_comparison(&app, &zeros, &config);
            let (threshold, _, _, ratio) = match comparison.best_common_threshold() {
                Some(v) => v,
                None => {
                    println!("    {num_tasks:>2} tasks: no common threshold reached");
                    continue;
                }
            };
            println!(
                "    {num_tasks:>2} tasks (Δr = {precision:.3} Å): savings {ratio:>6.1}x at fidelity {threshold:.2}"
            );
            rows.push(format!(
                "{},{num_tasks},{precision:.4},{threshold},{ratio:.3}",
                molecule.name
            ));
        }
    }
    let path = write_csv(
        "fig8_precision.csv",
        "molecule,num_tasks,precision_angstrom,fidelity_threshold,savings",
        &rows,
    )
    .unwrap();
    println!("\nwrote {}", path.display());
}

/// Figure 9: large-scale benchmarks (25-site Ising, C₂H₂ proxy) with Pauli propagation,
/// noiseless and with a 1 % depolarizing layer.
#[allow(clippy::type_complexity)]
fn fig9() {
    println!("Figure 9 — large-scale per-task savings (Pauli propagation backend)");
    let mut rows = Vec::new();
    let cases: Vec<(&str, Vec<(f64, qop::PauliOp)>, u64)> = vec![
        (
            "Ising-25",
            SpinChainFamily::large_ising_benchmark().tasks(6),
            0,
        ),
        (
            "C2H2",
            MoleculeSpec::c2h2().tasks(6),
            MoleculeSpec::c2h2().hartree_fock_state(),
        ),
    ];
    for noisy in [false, true] {
        for (name, tasks, hf) in &cases {
            let label = if noisy {
                format!("{name} (noisy)")
            } else {
                (*name).to_string()
            };
            let num_qubits = tasks[0].1.num_qubits();
            let vtasks: Vec<vqa::VqaTask> = tasks
                .iter()
                .map(|(p, h)| vqa::VqaTask::new(format!("{name} p={p:.3}"), *p, h.clone()))
                .collect();
            let ansatz = qcircuit::HardwareEfficientAnsatz::new(
                num_qubits,
                1,
                qcircuit::Entanglement::Linear,
            )
            .build();
            let app =
                vqa::VqaApplication::new(label.clone(), vtasks, ansatz, InitialState::Basis(*hf));
            let make_backend = || -> Box<dyn Backend + Send> {
                let config = PauliPropagatorConfig {
                    max_weight: 4,
                    coefficient_threshold: 1e-6,
                    max_terms: 20_000,
                };
                let backend = PauliPropagationBackend::new(config, qsim::DEFAULT_SHOTS_PER_PAULI);
                if noisy {
                    Box::new(backend.with_noise(NoiseModel::depolarizing_layer(0.01), 1))
                } else {
                    Box::new(backend)
                }
            };
            // Fixed, small iteration allowance; savings are measured per task as the shots
            // the baseline needs to match TreeVQA's energy (paper's methodology for systems
            // without exact references).
            let iterations = 60;
            let config = ComparisonConfig {
                iterations,
                record_every: 5,
                ..Default::default()
            };
            let zeros = vec![0.0; app.num_parameters()];
            let comparison =
                run_comparison_with_backends(&app, &zeros, &config, &mut || make_backend());
            let tree_per_task = comparison.treevqa.total_shots / app.num_tasks() as u64;
            println!("\n  {label}");
            for (task_idx, outcome) in comparison.treevqa.per_task.iter().enumerate() {
                let target = outcome.energy;
                let baseline_run = &comparison.baseline.per_task[task_idx];
                let reached = baseline_run
                    .history
                    .iter()
                    .find(|r| r.best_energy <= target + 1e-9)
                    .map(|r| r.cumulative_shots);
                let (ratio, marker) = match reached {
                    Some(shots) => (shots as f64 / tree_per_task as f64, ""),
                    None => (
                        baseline_run.shots_used as f64 / tree_per_task as f64,
                        " (baseline never matched; lower bound)",
                    ),
                };
                println!("    task {task_idx}: savings {ratio:>6.1}x{marker}");
                rows.push(format!(
                    "{label},{task_idx},{ratio:.3},{}",
                    reached.is_none()
                ));
            }
        }
    }
    let path = write_csv(
        "fig9_large_scale.csv",
        "benchmark,task_index,savings,lower_bound_only",
        &rows,
    )
    .unwrap();
    println!("\nwrote {}", path.display());
}

/// Figure 10: TreeVQA combined with CAFQA classical initialization (LiH).
fn fig10() {
    println!("Figure 10 — TreeVQA with CAFQA initialization (LiH)");
    let molecule = MoleculeSpec::lih();
    let app = molecule_application(&molecule, 4, 2);
    // CAFQA point for the application's mixed Hamiltonian (classical, zero shots).
    let refs: Vec<&qop::PauliOp> = app.tasks.iter().map(|t| &t.hamiltonian).collect();
    let mixed = qop::PauliOp::mixed(&refs);
    let cafqa = cafqa_initialize(&app.ansatz, &app.initial_state, &mixed, 2);
    let cafqa_fidelities: Vec<f64> = app
        .tasks
        .iter()
        .map(|t| t.fidelity(cafqa.energy).unwrap_or(0.0))
        .collect();
    let cafqa_fid = cafqa_fidelities
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    println!("  CAFQA initialization fidelity (worst task): {cafqa_fid:.3}");

    let config = ComparisonConfig {
        iterations: 250,
        ..Default::default()
    };
    let comparison = run_comparison(&app, &cafqa.params, &config);
    let mut rows = vec![format!("cafqa_fidelity,{cafqa_fid:.4}")];
    match comparison.best_common_threshold() {
        Some((threshold, baseline, tree, ratio)) => {
            println!(
                "  with CAFQA warm start: savings {ratio:.1}x at fidelity {threshold:.2} (baseline {baseline}, TreeVQA {tree})"
            );
            rows.push(format!("savings_at_{threshold},{ratio:.3}"));
        }
        None => println!("  no common fidelity threshold reached"),
    }
    let (b, t) = comparison.fidelity_at_budget(comparison.baseline.total_shots / 2);
    println!("  fidelity at half the baseline budget: baseline {b:.4}, TreeVQA {t:.4}");
    rows.push(format!("fidelity_at_half_budget,{b:.4},{t:.4}"));
    let path = write_csv("fig10_cafqa.csv", "metric,value,extra", &rows).unwrap();
    println!("wrote {}", path.display());
}

/// Figure 11: untuned TreeVQA with the COBYLA optimizer across all six benchmarks.
fn fig11() {
    println!("Figure 11 — TreeVQA with COBYLA (untuned)");
    let optimizer = OptimizerSpec::Cobyla(CobylaConfig::default());
    let panels = vqe_panels(120, optimizer);
    let mut rows = Vec::new();
    for (name, comparison) in &panels {
        let fid = comparison.treevqa.min_fidelity().unwrap_or(f64::NAN);
        match comparison.best_common_threshold() {
            Some((threshold, _, _, ratio)) => {
                println!("  {name:<24} savings {ratio:>6.1}x at fidelity {threshold:.2} (TreeVQA fid {fid:.3})");
                rows.push(format!("{name},{threshold},{ratio:.3},{fid:.4}"));
            }
            None => {
                println!("  {name:<24} no common threshold reached (TreeVQA fid {fid:.3})");
                rows.push(format!("{name},,,{fid:.4}"));
            }
        }
    }
    let path = write_csv(
        "fig11_cobyla.csv",
        "benchmark,fidelity_threshold,savings,treevqa_fidelity",
        &rows,
    )
    .unwrap();
    println!("wrote {}", path.display());
}

/// Table 2: noisy-backend study (LiH, 5-layer ansatz, synthetic device calibrations).
fn tab2() {
    println!("Table 2 — LiH noisy simulation across synthetic backends (COBYLA)");
    let molecule = MoleculeSpec::lih();
    let app = molecule_application(&molecule, 4, 5);
    let optimizer = OptimizerSpec::Cobyla(CobylaConfig::default());
    let mut rows = Vec::new();
    for model in NoiseModel::synthetic_backends() {
        let config = ComparisonConfig {
            iterations: 100,
            optimizer: optimizer.clone(),
            ..Default::default()
        };
        let zeros = vec![0.0; app.num_parameters()];
        let model_for_backend = model.clone();
        let comparison = run_comparison_with_backends(&app, &zeros, &config, &mut || {
            Box::new(NoisyBackend::new(
                model_for_backend.clone(),
                5,
                qsim::DEFAULT_SHOTS_PER_PAULI,
                29,
            )) as Box<dyn Backend + Send>
        });
        let max_fid =
            metrics::mean_fidelity(&app.tasks, &comparison.treevqa.energies()).unwrap_or(f64::NAN);
        let savings = comparison
            .best_common_threshold()
            .map(|(_, _, _, r)| r)
            .unwrap_or(f64::NAN);
        println!(
            "  {:<10} max avg fidelity {max_fid:.3}   savings {savings:>6.1}x",
            model.name
        );
        rows.push(format!("{},{max_fid:.4},{savings:.3}", model.name));
    }
    let path = write_csv(
        "tab2_noisy_backends.csv",
        "backend,max_avg_fidelity,savings",
        &rows,
    )
    .unwrap();
    println!("wrote {}", path.display());
}

/// Figure 12: QAOA MaxCut on IEEE-14 under three load-scale ranges.
fn fig12() {
    println!("Figure 12 — QAOA MaxCut on IEEE-14 (ma-QAOA, Red-QAOA init)");
    let mut rows = Vec::new();
    let mut lowering_reported = false;
    for (label, family) in Ieee14Family::paper_ranges() {
        let family = Ieee14Family {
            num_graphs: 6,
            ..family
        };
        let variance = family.edge_weight_variance();
        let (app, init) = ieee14_application(&family, 1);
        if !lowering_reported {
            // The ma-QAOA cost layer is pure diagonal rotations: the compiled path
            // batches the whole layer into one phase pass.
            let stats = qsim::CompiledCircuit::compile(&app.ansatz).stats();
            println!(
                "  compiled ma-QAOA ansatz: {} gates -> {} ops ({} diagonal passes covering {} gates)",
                stats.source_gates,
                stats.compiled_ops,
                stats.diagonal_passes,
                stats.diagonal_gates_batched
            );
            lowering_reported = true;
        }
        let config = ComparisonConfig {
            iterations: 150,
            ..Default::default()
        };
        let comparison = run_comparison(&app, &init, &config);
        let savings = comparison
            .best_common_threshold()
            .map(|(_, _, _, r)| r)
            .unwrap_or(f64::NAN);
        let (b, t) = comparison.fidelity_at_budget(comparison.baseline.total_shots / 2);
        println!(
            "  load range {label}: edge-weight variance {variance:.4}, savings {savings:>6.1}x, fidelity@half-budget baseline {b:.3} / TreeVQA {t:.3}"
        );
        rows.push(format!("{label},{variance:.5},{savings:.3},{b:.4},{t:.4}"));
    }
    let path = write_csv(
        "fig12_qaoa.csv",
        "load_range,edge_weight_variance,savings,baseline_fid_half_budget,treevqa_fid_half_budget",
        &rows,
    )
    .unwrap();
    println!("wrote {}", path.display());
}

/// Figure 13: sensitivity to the (forced single) split timing.
fn fig13() {
    println!("Figure 13 — split-timing sensitivity (forced single split)");
    let mut rows = Vec::new();
    for molecule in [MoleculeSpec::h2(), MoleculeSpec::hf(), MoleculeSpec::lih()] {
        println!("\n  {}", molecule.name);
        let app = molecule_application(&molecule, 4, 2);
        for &percent in &[25usize, 33, 41, 50, 58, 66, 75] {
            let config = TreeVqaConfig {
                max_cluster_iterations: 200,
                split_policy: SplitPolicy::ForcedSingle {
                    at_fraction: percent as f64 / 100.0,
                },
                record_every: 20,
                ..Default::default()
            };
            let tree = TreeVqa::new(app.clone(), config);
            let executor = Executor::single(StatevectorBackend::new());
            let result = tree.run(&executor).expect("well-formed application");
            let mean_error: f64 = result
                .per_task
                .iter()
                .map(|o| 100.0 * (1.0 - o.fidelity.unwrap_or(0.0)))
                .sum::<f64>()
                / result.per_task.len() as f64;
            println!("    split at {percent:>2}%: mean error {mean_error:.2}%");
            rows.push(format!("{},{percent},{mean_error:.4}", molecule.name));
        }
    }
    let path = write_csv(
        "fig13_split_timing.csv",
        "molecule,split_percent,mean_error_percent",
        &rows,
    )
    .unwrap();
    println!("\nwrote {}", path.display());
}

/// Figure 14: window-size sensitivity plus the split-threshold sweep discussed in §9.1.
fn fig14() {
    println!("Figure 14 — window-size and split-threshold sensitivity (LiH, HF)");
    let mut rows = Vec::new();
    for molecule in [MoleculeSpec::lih(), MoleculeSpec::hf()] {
        println!("\n  {}", molecule.name);
        let app = molecule_application(&molecule, 4, 2);
        let iterations = 250usize;
        for &window_ratio in &[0.04f64, 0.08, 0.12] {
            let window = ((iterations as f64 * window_ratio).round() as usize).max(3);
            let config = TreeVqaConfig {
                max_cluster_iterations: iterations,
                split_policy: SplitPolicy::Adaptive {
                    warmup_iterations: window.max(20),
                    window_size: window,
                    epsilon_split: 5e-4,
                },
                record_every: 20,
                ..Default::default()
            };
            let tree = TreeVqa::new(app.clone(), config);
            let executor = Executor::single(StatevectorBackend::new());
            let result = tree.run(&executor).expect("well-formed application");
            let accuracy = metrics::mean_fidelity(&app.tasks, &result.energies()).unwrap_or(0.0);
            println!(
                "    window {window:>3} ({:.0}% of budget): accuracy {:.2}%  critical depth {}",
                window_ratio * 100.0,
                accuracy * 100.0,
                result.tree.critical_depth()
            );
            rows.push(format!(
                "{},window,{window_ratio},{:.4},{}",
                molecule.name,
                accuracy,
                result.tree.critical_depth()
            ));
        }
        for &epsilon in &[5e-5, 5e-4, 5e-3] {
            let config = TreeVqaConfig {
                max_cluster_iterations: iterations,
                split_policy: SplitPolicy::Adaptive {
                    warmup_iterations: 40,
                    window_size: 20,
                    epsilon_split: epsilon,
                },
                record_every: 20,
                ..Default::default()
            };
            let tree = TreeVqa::new(app.clone(), config);
            let executor = Executor::single(StatevectorBackend::new());
            let result = tree.run(&executor).expect("well-formed application");
            let accuracy = metrics::mean_fidelity(&app.tasks, &result.energies()).unwrap_or(0.0);
            println!(
                "    epsilon {epsilon:.0e}: accuracy {:.2}%  splits {}",
                accuracy * 100.0,
                result.tree.num_splits()
            );
            rows.push(format!(
                "{},epsilon,{epsilon},{:.4},{}",
                molecule.name,
                accuracy,
                result.tree.num_splits()
            ));
        }
    }
    let path = write_csv(
        "fig14_window_threshold.csv",
        "molecule,sweep,value,accuracy,depth_or_splits",
        &rows,
    )
    .unwrap();
    println!("\nwrote {}", path.display());
}
