//! Generates `BENCH_obs.json`: the tracing-overhead baseline for the observability
//! subsystem.
//!
//! Runs the deterministic quick suite and pairs the fully-traced 4-client slate
//! workload (`exec/obs/jobs_on/32x12q` — builder-enabled span recording plus the
//! process-wide `qobs` flag, so the `qsim` pattern profiler ticks too) against its
//! untraced twin (`exec/jobs/4clients_32x12q`, baselined in `BENCH_exec.json`).  The
//! derived overhead percentage is the acceptance budget: full tracing must stay
//! within 5% of the untraced submit→complete path.
//!
//! Only the traced record enters the `"throughput"` array — the untraced twin is
//! already gated through `BENCH_exec.json`, and the perf-gate scanner must not see
//! the same id in two baseline files.  Run on a quiet machine and commit the result:
//!
//! ```text
//! cargo run --release -p treevqa_bench --bin obs_bench
//! ```

use treevqa_bench::quick::{record_to_json, run_quick_suite, QuickRecord};

/// The acceptance budget: fully-enabled tracing may cost at most this fraction of the
/// untraced workload's median.
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

fn main() {
    let records: Vec<QuickRecord> = run_quick_suite();
    let off = records
        .iter()
        .find(|r| r.id == "exec/jobs/4clients_32x12q")
        .expect("the quick suite must contain the untraced slate workload");
    let on = records
        .iter()
        .find(|r| r.id == "exec/obs/jobs_on/32x12q")
        .expect("the quick suite must contain the traced slate workload");
    let overhead_pct = (on.median_ns - off.median_ns) / off.median_ns * 100.0;

    let mut out = String::from("{\n  \"throughput\": [\n    ");
    out.push_str(&record_to_json(on));
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"derived\": {{\"untraced_median_ns\": {:.1}, \"traced_median_ns\": {:.1}, \
         \"overhead_pct\": {overhead_pct:.2}, \"budget_pct\": {OVERHEAD_BUDGET_PCT:.1}}}\n",
        off.median_ns, on.median_ns
    ));
    out.push_str("}\n");

    std::fs::write("BENCH_obs.json", &out).expect("write BENCH_obs.json");
    println!("{out}");
    println!(
        "tracing overhead: {overhead_pct:.2}% (budget {OVERHEAD_BUDGET_PCT:.1}%) — wrote BENCH_obs.json"
    );
    if overhead_pct > OVERHEAD_BUDGET_PCT {
        eprintln!("warning: overhead exceeds the {OVERHEAD_BUDGET_PCT:.1}% budget on this host");
        std::process::exit(1);
    }
}
