//! Generates `BENCH_exec.json`: execution-service throughput baselines (submission
//! overhead and batched jobs/s at 12 qubits) plus the fairness check across 4 clients.
//!
//! The throughput records come from the same deterministic quick-bench harness the CI
//! perf gate runs (`treevqa_bench::quick::run_quick_suite`, ids prefixed `exec/`), so
//! the checked-in medians line up one-to-one with every later quick run and the
//! `perf_gate` binary can gate regressions of the service path exactly like the kernel
//! and batch baselines.  Run on a quiet machine and commit the result:
//!
//! ```text
//! cargo run --release -p treevqa_bench --bin exec_bench
//! ```

use treevqa_bench::quick::{measure_fairness, record_to_json, run_quick_suite, QuickRecord};

fn main() {
    let records: Vec<QuickRecord> = run_quick_suite()
        .into_iter()
        // The overload/admission-control workloads baseline separately in
        // BENCH_exec_overload.json (see the exec_overload binary), and the tracing
        // workload in BENCH_obs.json (obs_bench).
        .filter(|r| {
            r.id.starts_with("exec/")
                && !r.id.starts_with("exec/overload/")
                && !r.id.starts_with("exec/obs/")
        })
        .collect();
    assert!(
        !records.is_empty(),
        "the quick suite must contain exec/ workloads"
    );
    let (clients, per_client, spread) = measure_fairness();
    assert_eq!(
        spread, 0,
        "fair round-robin must be exact for a paused slate"
    );

    // jobs/s headlines derived from the slate records (32 jobs per iteration): the
    // single-worker row anchors the perf gate, the 4-worker row is the multi-worker
    // throughput headline.
    let jobs_per_s = |id: &str| {
        records
            .iter()
            .find(|r| r.id == id)
            .map(|r| 32.0 / (r.median_ns * 1e-9))
            .unwrap_or(f64::NAN)
    };
    let jobs_per_s_1w = jobs_per_s("exec/jobs/4clients_32x12q");
    let jobs_per_s_4w = jobs_per_s("exec/jobs/4workers_32x12q");

    let mut out = String::from("{\n  \"throughput\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&record_to_json(r));
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"derived\": {{\"jobs_per_s_12q\": {jobs_per_s_1w:.1}, \
         \"jobs_per_s_12q_4workers\": {jobs_per_s_4w:.1}}},\n"
    ));
    out.push_str(&format!(
        "  \"fairness\": {{\"clients\": {clients}, \"jobs_per_client\": {per_client}, \
         \"max_position_spread\": {spread}, \"round_robin_exact\": true}}\n"
    ));
    out.push_str("}\n");

    std::fs::write("BENCH_exec.json", &out).expect("write BENCH_exec.json");
    println!("{out}");
    println!(
        "wrote BENCH_exec.json ({} throughput records)",
        records.len()
    );
}
