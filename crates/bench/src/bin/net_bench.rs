//! Generates `BENCH_net.json`: network-serving baselines — the loopback probe round
//! trip (wire + framing + demultiplexing cost per request) and served jobs/s as the
//! 32-job 12-qubit slate fans out over 1, 4, and 16 connections.
//!
//! The records come from the same deterministic quick-bench harness the CI perf gate
//! runs (`treevqa_bench::quick::run_quick_suite`, ids prefixed `net/`), so the
//! checked-in medians line up one-to-one with every later quick run and the
//! `perf_gate` binary gates regressions of the serving path exactly like the kernel
//! and execution-service baselines.  Run on a quiet machine and commit the result:
//!
//! ```text
//! cargo run --release -p treevqa_bench --bin net_bench
//! ```

use treevqa_bench::quick::{record_to_json, run_quick_suite, QuickRecord};

fn main() {
    let records: Vec<QuickRecord> = run_quick_suite()
        .into_iter()
        .filter(|r| r.id.starts_with("net/"))
        .collect();
    assert!(
        !records.is_empty(),
        "the quick suite must contain net/ workloads"
    );

    // Headlines: probe RTT in microseconds, and jobs/s at each connection count (32
    // jobs per timed iteration regardless of fan-out).
    let median = |id: &str| {
        records
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median_ns)
            .unwrap_or(f64::NAN)
    };
    let rtt_us = median("net/rtt/probe_2q") / 1e3;
    let jobs_per_s = |id: &str| 32.0 / (median(id) * 1e-9);
    let jobs_1 = jobs_per_s("net/jobs/1conn_32x12q");
    let jobs_4 = jobs_per_s("net/jobs/4conn_32x12q");
    let jobs_16 = jobs_per_s("net/jobs/16conn_32x12q");

    let mut out = String::from("{\n  \"throughput\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&record_to_json(r));
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"derived\": {{\"probe_rtt_us\": {rtt_us:.1}, \"jobs_per_s_12q_1conn\": {jobs_1:.1}, \
         \"jobs_per_s_12q_4conn\": {jobs_4:.1}, \"jobs_per_s_12q_16conn\": {jobs_16:.1}}}\n"
    ));
    out.push_str("}\n");

    std::fs::write("BENCH_net.json", &out).expect("write BENCH_net.json");
    println!("{out}");
    println!(
        "wrote BENCH_net.json ({} throughput records)",
        records.len()
    );
}
