//! Generates `BENCH_exec_overload.json`: admission-control and load-shedding
//! baselines for the execution service's bounded queues.
//!
//! The throughput records come from the same deterministic quick-bench harness the CI
//! perf gate runs (`treevqa_bench::quick::run_quick_suite`, ids prefixed
//! `exec/overload/`), so the checked-in medians line up one-to-one with every later
//! quick run and the `perf_gate` binary gates regressions of the admission path
//! exactly like the kernel and batch baselines.  The scenario section replays a fixed
//! overload burst — 256 submissions into a 64-deep `Reject` queue on a paused executor
//! — and asserts the exact accept/reject split before recording it.  Run on a quiet
//! machine and commit the result:
//!
//! ```text
//! cargo run --release -p treevqa_bench --bin exec_overload
//! ```

use qexec::{EvalJob, ExecError, Executor, JobHandle};
use std::sync::Arc;
use treevqa_bench::quick::{record_to_json, run_quick_suite, QuickRecord};
use vqa::{InitialState, StatevectorBackend};

const SUBMITTED: usize = 256;
const CAPACITY: usize = 64;

/// Replays the fixed overload burst: exactly `CAPACITY` submissions are admitted, the
/// rest bounce with [`ExecError::Overloaded`], and every admitted job completes once
/// the executor resumes.  Returns `(accepted, rejected)`.
fn overload_scenario() -> (usize, usize) {
    let circuit = Arc::new(
        qcircuit::HardwareEfficientAnsatz::new(6, 1, qcircuit::Entanglement::Linear).build(),
    );
    let op = Arc::new(qop::PauliOp::from_labels(6, &[("ZIIIII", 1.0)]));
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::with_shots(0))
        .queue_capacity(CAPACITY)
        .paused()
        .start();
    let client = executor.client();
    let mut accepted: Vec<JobHandle> = Vec::new();
    let mut rejected = 0usize;
    for i in 0..SUBMITTED {
        let params: Vec<f64> = (0..circuit.num_parameters())
            .map(|p| 0.01 * p as f64 + 0.001 * i as f64)
            .collect();
        let job = EvalJob::new(
            Arc::clone(&circuit),
            params,
            InitialState::Basis(0),
            Arc::clone(&op),
        );
        match client.submit(job) {
            Ok(handle) => accepted.push(handle),
            Err(ExecError::Overloaded) => rejected += 1,
            Err(other) => panic!("unexpected admission outcome: {other}"),
        }
    }
    executor.resume();
    for handle in &accepted {
        handle.wait().expect("admitted overload jobs complete");
    }
    let stats = executor.stats();
    assert_eq!(stats.rejected as usize, rejected);
    (accepted.len(), rejected)
}

fn main() {
    let records: Vec<QuickRecord> = run_quick_suite()
        .into_iter()
        .filter(|r| r.id.starts_with("exec/overload/"))
        .collect();
    assert!(
        !records.is_empty(),
        "the quick suite must contain exec/overload/ workloads"
    );

    let (accepted, rejected) = overload_scenario();
    assert_eq!(
        accepted, CAPACITY,
        "the bounded queue admits exactly its capacity"
    );
    assert_eq!(rejected, SUBMITTED - CAPACITY);

    let mut out = String::from("{\n  \"throughput\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&record_to_json(r));
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"scenario\": {{\"submitted\": {SUBMITTED}, \"queue_capacity\": {CAPACITY}, \
         \"accepted\": {accepted}, \"rejected\": {rejected}, \
         \"all_accepted_completed\": true}}\n"
    ));
    out.push_str("}\n");

    std::fs::write("BENCH_exec_overload.json", &out).expect("write BENCH_exec_overload.json");
    println!("{out}");
    println!(
        "wrote BENCH_exec_overload.json ({} throughput records)",
        records.len()
    );
}
