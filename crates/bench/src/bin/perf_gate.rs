//! CI perf-regression gate: compares `target/bench_quick.json` (first CLI argument, or
//! that default) against the checked-in `BENCH_kernels.json` / `BENCH_batch.json` /
//! `BENCH_noise.json` / `BENCH_exec.json` / `BENCH_exec_overload.json` /
//! `BENCH_obs.json` baselines and exits non-zero if any workload's throughput
//! regressed by more than the tolerance (default 25%; override with
//! `PERF_GATE_TOLERANCE`).
//!
//! The tolerance is generous on purpose: CI hosts are not the baseline-recording host,
//! so the gate is a tripwire for real regressions (a kernel accidentally de-vectorized,
//! a batching path disabled), not a precision benchmark.  Quick workloads with no
//! baseline entry are reported but gate nothing.

use treevqa_bench::quick::{
    compare_against_baselines, gate_tolerance, parse_median_records, parse_records, QuickRecord,
};

const BASELINE_FILES: [&str; 7] = [
    "BENCH_kernels.json",
    "BENCH_batch.json",
    "BENCH_noise.json",
    "BENCH_exec.json",
    "BENCH_exec_overload.json",
    "BENCH_obs.json",
    "BENCH_net.json",
];

fn main() {
    let quick_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/bench_quick.json".to_string());
    let quick_json = std::fs::read_to_string(&quick_path).unwrap_or_else(|e| {
        eprintln!("cannot read {quick_path}: {e} (run the quick_bench binary first)");
        std::process::exit(2);
    });
    // Re-parse through the shared scanner so the gate sees exactly what it would see in
    // a baseline file.
    let quick: Vec<QuickRecord> = parse_records(&quick_json)
        .into_iter()
        .map(|(id, median_ns, min_ns)| QuickRecord {
            id,
            median_ns,
            mean_ns: median_ns,
            min_ns: min_ns.unwrap_or(median_ns),
            max_ns: median_ns,
            samples: 0,
            iters_per_sample: 0,
        })
        .collect();

    let mut baselines: Vec<(String, f64)> = Vec::new();
    for file in BASELINE_FILES {
        match std::fs::read_to_string(file) {
            Ok(json) => baselines.extend(parse_median_records(&json)),
            Err(e) => eprintln!("warning: skipping baseline {file}: {e}"),
        }
    }

    let tolerance = gate_tolerance();
    let rows = compare_against_baselines(&quick, &baselines, tolerance);
    println!(
        "== perf gate: quick medians vs checked-in baselines (fail below {:.0}% throughput) ==",
        (1.0 - tolerance) * 100.0
    );
    for row in &rows {
        println!(
            "{:<34} quick {:>12.1} ns   baseline {:>12.1} ns   throughput {:>5.2}x  {}",
            row.id,
            row.quick_ns,
            row.baseline_ns,
            row.throughput_ratio,
            if row.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for q in &quick {
        if !rows.iter().any(|r| r.id == q.id) {
            println!("{:<34} (no baseline entry; not gated)", q.id);
        }
    }

    let regressed = rows.iter().filter(|r| r.regressed).count();
    if regressed > 0 {
        eprintln!("\nperf gate FAILED: {regressed} workload(s) regressed beyond tolerance");
        std::process::exit(1);
    }
    println!("\nperf gate passed ({} workloads compared)", rows.len());
}
