//! Deterministic quick-bench runner: times the fixed workload subset of
//! [`treevqa_bench::quick`] and writes `target/bench_quick.json` (override the path with
//! the first CLI argument).  Pair with the `perf_gate` binary to compare against the
//! checked-in `BENCH_*.json` baselines.

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/bench_quick.json".to_string());
    let records = treevqa_bench::quick::run_quick_suite();
    println!("== quick bench (deterministic mode) ==");
    for r in &records {
        println!(
            "{:<34} median {:>12.1} ns  ({} samples x {} iters)",
            r.id, r.median_ns, r.samples, r.iters_per_sample
        );
    }
    if let Some(parent) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(parent).expect("failed to create output directory");
    }
    std::fs::write(&path, treevqa_bench::quick::records_to_json(&records))
        .expect("failed to write quick-bench JSON");
    println!("\nwrote {path} ({} workloads)", records.len());
}
