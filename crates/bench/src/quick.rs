//! Deterministic quick-bench mode and the CI perf-regression gate.
//!
//! `cargo run --release -p treevqa_bench --bin quick_bench` runs a fixed subset of the
//! criterion benchmark workloads (same builders, see [`crate::workloads`]) with **fixed**
//! iteration counts and sample counts — no adaptive calibration, no RNG — and writes
//! `target/bench_quick.json` in the `BENCH_*.json` record schema.
//!
//! `cargo run --release -p treevqa_bench --bin perf_gate` then compares that file
//! against the checked-in `BENCH_kernels.json` / `BENCH_batch.json` / `BENCH_noise.json`
//! / `BENCH_exec.json` / `BENCH_exec_overload.json` / `BENCH_obs.json` /
//! `BENCH_net.json` baselines.  The tolerance is deliberately generous — CI hosts differ from the
//! baseline-recording host — so the gate only fails on a throughput regression larger
//! than [`DEFAULT_TOLERANCE`] (override with the `PERF_GATE_TOLERANCE` environment
//! variable, a fraction in `(0, 1)`).  The workflow uploads the quick JSON as an
//! artifact on every run, so the perf trajectory accumulates even when the gate passes.

use crate::workloads;
use qexec::{AdmissionPolicy, EvalJob, Executor, SubmitOptions};
use std::sync::Arc;
use std::time::Instant;
use vqa::{Backend, EvalRequest, InitialState, NoisyStatevectorBackend, StatevectorBackend};

/// One timed quick-bench workload, in the `BENCH_*.json` record schema.
#[derive(Clone, Debug)]
pub struct QuickRecord {
    /// Benchmark id, matching the criterion id of the same workload.
    pub id: String,
    /// Median per-iteration wall time over the samples, in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration wall time.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (fixed per workload — the "deterministic" in
    /// deterministic mode).
    pub iters_per_sample: usize,
}

/// Samples per workload (fixed; sample 0 is preceded by one untimed warmup pass).
const QUICK_SAMPLES: usize = 9;

fn time_workload(id: &str, iters: usize, mut f: impl FnMut()) -> QuickRecord {
    // One untimed warmup pass populates caches and faults in the state memory.
    for _ in 0..iters {
        f();
    }
    let mut per_iter: Vec<f64> = (0..QUICK_SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    QuickRecord {
        id: id.to_string(),
        median_ns: median,
        mean_ns: mean,
        min_ns: per_iter[0],
        max_ns: *per_iter.last().unwrap(),
        samples: QUICK_SAMPLES,
        iters_per_sample: iters,
    }
}

/// Runs the deterministic quick suite: one 12-qubit representative per kernel family of
/// `BENCH_kernels.json`, the compiled-execution and batched-evaluation workloads of
/// `BENCH_batch.json`, and the 16-trajectory noisy evaluation of `BENCH_noise.json`.
///
/// Iteration counts are fixed so a full run takes a few seconds; ids match the criterion
/// benches exactly so the perf gate can line records up against the baselines.
pub fn run_quick_suite() -> Vec<QuickRecord> {
    let n = 12;
    let mut records = Vec::new();

    {
        let gate = qcircuit::Gate::Rx(n / 2, qcircuit::Angle::Fixed(0.7));
        let mut state = workloads::dense_state(n);
        records.push(time_workload("single_qubit_rx/fast/12q", 2000, || {
            qsim::apply_gate(&mut state, &gate, &[])
        }));
    }
    {
        let ladder: Vec<qcircuit::Gate> =
            (0..n - 1).map(|q| qcircuit::Gate::Cx(q, q + 1)).collect();
        let mut state = workloads::dense_state(n);
        records.push(time_workload("cx_ladder/fast/12q", 500, || {
            for gate in &ladder {
                qsim::apply_gate(&mut state, gate, &[]);
            }
        }));
    }
    {
        let string = workloads::uccsd_rotation_string(n);
        let mut state = workloads::dense_state(n);
        records.push(time_workload("pauli_rotation/fast/12q", 2000, || {
            qsim::apply_pauli_rotation(&mut state, &string, 0.9)
        }));
    }
    {
        let string = workloads::mixed_rotation_string(n);
        let mut state = workloads::dense_state(n);
        records.push(time_workload(
            "pauli_rotation_xdense/fast/12q",
            2000,
            || qsim::apply_pauli_rotation(&mut state, &string, 0.9),
        ));
    }
    {
        let op = workloads::synthetic_hamiltonian(n);
        let state = workloads::dense_state(n);
        records.push(time_workload(
            "hamiltonian_expectation/fast/12q",
            300,
            || {
                std::hint::black_box(op.expectation(&state));
            },
        ));
    }
    {
        let circ = workloads::rotation_heavy_ansatz(n, 2);
        let params = workloads::ansatz_params(&circ);
        let compiled = qsim::CompiledCircuit::compile(&circ);
        let initial = qop::Statevector::zero_state(n);
        let mut scratch = qop::Statevector::zero_state(n);
        records.push(time_workload("circuit_exec/compiled/12q", 150, || {
            compiled.execute_into(&params, &initial, &mut scratch);
            std::hint::black_box(&scratch);
        }));
    }
    {
        let circ =
            qcircuit::HardwareEfficientAnsatz::new(n, 2, qcircuit::Entanglement::Circular).build();
        let base = workloads::ansatz_params(&circ);
        let ham = workloads::tfim_hamiltonian(n);
        let candidates: Vec<Vec<f64>> = (0..8)
            .map(|k| base.iter().map(|p| p + 0.01 * k as f64).collect())
            .collect();
        let mut backend = StatevectorBackend::with_shots(0);
        records.push(time_workload("evaluate/batched/8", 30, || {
            let requests: Vec<EvalRequest<'_>> = candidates
                .iter()
                .map(|candidate| EvalRequest {
                    circuit: &circ,
                    params: candidate,
                    initial: &InitialState::Basis(0),
                    charged_op: &ham,
                    free_ops: &[],
                    stream: None,
                })
                .collect();
            std::hint::black_box(backend.evaluate_batch(&requests));
        }));
    }
    {
        let circ = workloads::rotation_heavy_ansatz(n, 2);
        let params = workloads::ansatz_params(&circ);
        let ham = workloads::zz_ring_hamiltonian(n);
        let mut backend = NoisyStatevectorBackend::new(workloads::bench_noise_model(), 0, 7)
            .with_trajectories(16);
        records.push(time_workload("noisy_eval/trajectories/16", 8, || {
            std::hint::black_box(backend.evaluate(
                &circ,
                &params,
                &InitialState::Basis(0),
                &ham,
                &[],
            ));
        }));
    }
    {
        // Execution-service overhead (BENCH_exec.json): one probe-job round trip on a
        // tiny register isolates the submit → schedule → complete → wake path; the
        // evaluation itself is microseconds, so the record is dominated by service
        // overhead.
        let tiny = {
            let mut c = qcircuit::Circuit::new(2);
            c.push(qcircuit::Gate::H(0));
            c.push(qcircuit::Gate::Cx(0, 1));
            Arc::new(c)
        };
        let op = Arc::new(qop::PauliOp::from_labels(2, &[("ZZ", 1.0)]));
        let executor = Executor::single(StatevectorBackend::with_shots(0));
        let client = executor.client();
        records.push(time_workload("exec/submit_probe/2q", 500, || {
            let job = EvalJob::new(
                Arc::clone(&tiny),
                Vec::new(),
                InitialState::Basis(0),
                Arc::clone(&op),
            );
            std::hint::black_box(client.submit_probe(job).unwrap().wait().unwrap());
        }));
    }
    {
        // Executor jobs/s at 12q: 4 clients × 8 jobs assembled under pause and released
        // as one fair round-robin slate, which the service coalesces into one batched
        // driver submission — the direct-backend counterpart is `evaluate/batched/8`
        // (BENCH_batch.json), so the two files together bound the service's batching
        // overhead.
        let circ = Arc::new(
            qcircuit::HardwareEfficientAnsatz::new(n, 2, qcircuit::Entanglement::Circular).build(),
        );
        let base = workloads::ansatz_params(&circ);
        let ham = Arc::new(workloads::tfim_hamiltonian(n));
        let executor = Executor::single(StatevectorBackend::with_shots(0));
        let clients: Vec<_> = (0..4).map(|_| executor.client()).collect();
        records.push(time_workload("exec/jobs/4clients_32x12q", 8, || {
            executor.pause();
            let handles: Vec<_> = (0..32)
                .map(|i| {
                    let params: Vec<f64> = base.iter().map(|p| p + 0.001 * i as f64).collect();
                    clients[i % clients.len()]
                        .submit(EvalJob::new(
                            Arc::clone(&circ),
                            params,
                            InitialState::Basis(0),
                            Arc::clone(&ham),
                        ))
                        .unwrap()
                })
                .collect();
            executor.resume();
            std::hint::black_box(qexec::wait_all(&handles).unwrap());
        }));
    }
    {
        // Multi-worker throughput (BENCH_exec.json): the 4-client slate again, but the
        // 32 jobs spread round-robin over 4 identically configured backends on a
        // `workers(4)` executor, so every slate's per-backend batches execute
        // concurrently.  Compared against `exec/jobs/4clients_32x12q` (one backend, one
        // worker — kept as the perf-gate anchor for the serial path) this bounds the
        // scaling of the partitioned dispatch path; results stay bit-identical by the
        // schedule-independence contract.
        let circ = Arc::new(
            qcircuit::HardwareEfficientAnsatz::new(n, 2, qcircuit::Entanglement::Circular).build(),
        );
        let base = workloads::ansatz_params(&circ);
        let ham = Arc::new(workloads::tfim_hamiltonian(n));
        let mut builder = Executor::builder().workers(4);
        for b in 0..4 {
            builder = builder.register(format!("w{b}"), StatevectorBackend::with_shots(0));
        }
        let executor = builder.start();
        let clients: Vec<_> = (0..4).map(|_| executor.client()).collect();
        records.push(time_workload("exec/jobs/4workers_32x12q", 8, || {
            executor.pause();
            let handles: Vec<_> = (0..32)
                .map(|i| {
                    let params: Vec<f64> = base.iter().map(|p| p + 0.001 * i as f64).collect();
                    let opts = SubmitOptions::new().backend(format!("w{}", i % 4));
                    clients[i % clients.len()]
                        .submit_with(
                            EvalJob::new(
                                Arc::clone(&circ),
                                params,
                                InitialState::Basis(0),
                                Arc::clone(&ham),
                            ),
                            &opts,
                        )
                        .unwrap()
                })
                .collect();
            executor.resume();
            std::hint::black_box(qexec::wait_all(&handles).unwrap());
        }));
    }
    {
        // Tracing overhead (BENCH_obs.json): the 4-client slate workload again with
        // full observability on — the builder flag turns on span recording for this
        // executor, and the process-wide flag makes the qsim pattern profiler tick
        // too.  The median, compared against `exec/jobs/4clients_32x12q` above, bounds
        // the fully-enabled tracing cost (the obs_bench binary records the pair and
        // the derived overhead percentage).
        let circ = Arc::new(
            qcircuit::HardwareEfficientAnsatz::new(n, 2, qcircuit::Entanglement::Circular).build(),
        );
        let base = workloads::ansatz_params(&circ);
        let ham = Arc::new(workloads::tfim_hamiltonian(n));
        qexec::qobs::set_enabled(true);
        let executor = Executor::builder()
            .register(qexec::DEFAULT_BACKEND, StatevectorBackend::with_shots(0))
            .observability(true)
            .start();
        let clients: Vec<_> = (0..4).map(|_| executor.client()).collect();
        records.push(time_workload("exec/obs/jobs_on/32x12q", 8, || {
            executor.pause();
            let handles: Vec<_> = (0..32)
                .map(|i| {
                    let params: Vec<f64> = base.iter().map(|p| p + 0.001 * i as f64).collect();
                    clients[i % clients.len()]
                        .submit(EvalJob::new(
                            Arc::clone(&circ),
                            params,
                            InitialState::Basis(0),
                            Arc::clone(&ham),
                        ))
                        .unwrap()
                })
                .collect();
            executor.resume();
            std::hint::black_box(qexec::wait_all(&handles).unwrap());
        }));
        // Force recording back off so the remaining workloads (and any executor they
        // construct) run untraced regardless of the ambient `QOBS` value.
        qexec::qobs::set_enabled(false);
    }
    {
        // Admission-control overhead (BENCH_exec_overload.json): a paused executor
        // whose 1-deep queue is already full, so every timed submission exercises the
        // bounded-queue Reject fast path end to end — validate, admission scan,
        // structured refusal — without any execution noise.
        let tiny = {
            let mut c = qcircuit::Circuit::new(2);
            c.push(qcircuit::Gate::H(0));
            c.push(qcircuit::Gate::Cx(0, 1));
            Arc::new(c)
        };
        let op = Arc::new(qop::PauliOp::from_labels(2, &[("ZZ", 1.0)]));
        let executor = Executor::builder()
            .register(qexec::DEFAULT_BACKEND, StatevectorBackend::with_shots(0))
            .queue_capacity(1)
            .paused()
            .start();
        let client = executor.client();
        let _plug = client
            .submit(EvalJob::new(
                Arc::clone(&tiny),
                Vec::new(),
                InitialState::Basis(0),
                Arc::clone(&op),
            ))
            .unwrap();
        records.push(time_workload("exec/overload/reject/1cap", 2000, || {
            let job = EvalJob::new(
                Arc::clone(&tiny),
                Vec::new(),
                InitialState::Basis(0),
                Arc::clone(&op),
            );
            std::hint::black_box(client.submit(job).unwrap_err());
        }));
    }
    {
        // Load-shedding steady state (BENCH_exec_overload.json): an 8-deep queue under
        // `ShedLowestPriority` with strictly escalating priorities, so once warm every
        // timed submission admits the newcomer and evicts the current lowest-priority
        // job — the record times the victim scan plus the evicted handle's completion.
        let tiny = {
            let mut c = qcircuit::Circuit::new(2);
            c.push(qcircuit::Gate::H(0));
            c.push(qcircuit::Gate::Cx(0, 1));
            Arc::new(c)
        };
        let op = Arc::new(qop::PauliOp::from_labels(2, &[("ZZ", 1.0)]));
        let executor = Executor::builder()
            .register(qexec::DEFAULT_BACKEND, StatevectorBackend::with_shots(0))
            .queue_capacity(8)
            .admission(AdmissionPolicy::ShedLowestPriority)
            .paused()
            .start();
        let client = executor.client();
        let mut priority: i32 = 0;
        records.push(time_workload("exec/overload/shed/8cap", 2000, || {
            priority += 1;
            let job = EvalJob::new(
                Arc::clone(&tiny),
                Vec::new(),
                InitialState::Basis(0),
                Arc::clone(&op),
            );
            let opts = SubmitOptions {
                priority,
                ..SubmitOptions::default()
            };
            std::hint::black_box(client.submit_with(job, &opts).unwrap());
        }));
    }
    {
        // Network serving overhead (BENCH_net.json): the execution service again, but
        // through real loopback TCP connections.  The probe round trip, compared
        // against `exec/submit_probe/2q` above, bounds the wire cost per request
        // (framing, codec, one socket round trip, demultiplexing); the `net/jobs/*`
        // slates measure served jobs/s as the same 32-job 12q workload fans out over
        // 1, 4, and 16 connections, each connection shipping its share as one batch
        // frame (a coalesced slate server-side).
        let tiny = {
            let mut c = qcircuit::Circuit::new(2);
            c.push(qcircuit::Gate::H(0));
            c.push(qcircuit::Gate::Cx(0, 1));
            Arc::new(c)
        };
        let op = Arc::new(qop::PauliOp::from_labels(2, &[("ZZ", 1.0)]));
        let executor = Arc::new(Executor::single(StatevectorBackend::with_shots(0)));
        let server = qnet::NetServer::bind("127.0.0.1:0", Arc::clone(&executor))
            .expect("bind loopback bench server");
        {
            let client =
                qnet::NetClient::connect(server.local_addr()).expect("connect bench client");
            records.push(time_workload("net/rtt/probe_2q", 300, || {
                let job = EvalJob::new(
                    Arc::clone(&tiny),
                    Vec::new(),
                    InitialState::Basis(0),
                    Arc::clone(&op),
                );
                std::hint::black_box(client.submit_probe(job).unwrap().wait().unwrap());
            }));
        }
        let circ = Arc::new(
            qcircuit::HardwareEfficientAnsatz::new(n, 2, qcircuit::Entanglement::Circular).build(),
        );
        let base = workloads::ansatz_params(&circ);
        let ham = Arc::new(workloads::tfim_hamiltonian(n));
        for conns in [1usize, 4, 16] {
            let clients: Vec<_> = (0..conns)
                .map(|_| qnet::NetClient::connect(server.local_addr()).expect("connect"))
                .collect();
            let per_conn = 32 / conns;
            records.push(time_workload(
                &format!("net/jobs/{conns}conn_32x12q"),
                8,
                || {
                    let groups: Vec<_> = clients
                        .iter()
                        .enumerate()
                        .map(|(c, client)| {
                            let jobs: Vec<EvalJob> = (0..per_conn)
                                .map(|i| {
                                    let params: Vec<f64> = base
                                        .iter()
                                        .map(|p| p + 0.001 * (c * per_conn + i) as f64)
                                        .collect();
                                    EvalJob::new(
                                        Arc::clone(&circ),
                                        params,
                                        InitialState::Basis(0),
                                        Arc::clone(&ham),
                                    )
                                })
                                .collect();
                            client.submit_group(jobs).expect("batch submit")
                        })
                        .collect();
                    for group in &groups {
                        for handle in group {
                            std::hint::black_box(handle.wait().unwrap());
                        }
                    }
                },
            ));
        }
    }

    records
}

/// Measures the fair-scheduling property itself: 4 clients × 8 jobs released as one
/// slate must execute in exact round-robin order (client-position spread 0).  Returns
/// `(clients, jobs_per_client, max_position_spread)` for the `BENCH_exec.json` fairness
/// section.
pub fn measure_fairness() -> (usize, usize, u64) {
    let num_clients = 4usize;
    let per_client = 8usize;
    let circ = Arc::new(
        qcircuit::HardwareEfficientAnsatz::new(6, 1, qcircuit::Entanglement::Linear).build(),
    );
    let params = workloads::ansatz_params(&circ);
    let ham = Arc::new(workloads::tfim_hamiltonian(6));
    let executor = Executor::single(StatevectorBackend::with_shots(0));
    executor.pause();
    let clients: Vec<_> = (0..num_clients).map(|_| executor.client()).collect();
    let mut handles = Vec::new();
    for (c, client) in clients.iter().enumerate() {
        for j in 0..per_client {
            let handle = client
                .submit(EvalJob::new(
                    Arc::clone(&circ),
                    params.clone(),
                    InitialState::Basis(0),
                    Arc::clone(&ham),
                ))
                .unwrap();
            handles.push((c, j, handle));
        }
    }
    executor.resume();
    let mut spread = 0u64;
    for (c, j, handle) in &handles {
        handle.wait().unwrap();
        let expected = (j * num_clients + c) as u64;
        let actual = handle.sequence().expect("executed");
        spread = spread.max(actual.abs_diff(expected));
    }
    (num_clients, per_client, spread)
}

/// Serializes one record as a `BENCH_*.json` object (no indentation or separator) —
/// the single definition of the record schema, shared by [`records_to_json`] and the
/// `exec_bench` baseline writer so the files cannot drift apart.
pub fn record_to_json(r: &QuickRecord) -> String {
    format!(
        "{{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
        r.id, r.median_ns, r.mean_ns, r.min_ns, r.max_ns, r.samples, r.iters_per_sample,
    )
}

/// Serializes records in the `BENCH_*.json` array schema.
pub fn records_to_json(records: &[QuickRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&record_to_json(r));
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Extracts `(id, median_ns)` pairs from any of the `BENCH_*.json` files (the kernel and
/// batch files are record arrays, the noise file nests records under `"throughput"`; this
/// scanner only relies on the `"id": "…"` / `"median_ns": N` field pairing those share).
pub fn parse_median_records(json: &str) -> Vec<(String, f64)> {
    parse_records(json)
        .into_iter()
        .map(|(id, median, _)| (id, median))
        .collect()
}

/// Like [`parse_median_records`] but also captures the optional `min_ns` field, which
/// the perf gate prefers for the quick run (see [`compare_against_baselines`]).
pub fn parse_records(json: &str) -> Vec<(String, f64, Option<f64>)> {
    fn leading_number(s: &str) -> Option<f64> {
        let num: String = s
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        num.parse::<f64>().ok()
    }
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(idx) = rest.find("\"id\":") {
        rest = &rest[idx + 5..];
        let Some(open) = rest.find('"') else { break };
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        let id = rest[open + 1..open + 1 + close].to_string();
        rest = &rest[open + 1 + close..];
        // The median (and, when present, min) fields follow their id within the same
        // record, before the record's closing brace.
        let Some(midx) = rest.find("\"median_ns\":") else {
            break;
        };
        let tail = &rest[midx + 12..];
        let record_end = tail.find('}').unwrap_or(tail.len());
        let min = tail[..record_end]
            .find("\"min_ns\":")
            .and_then(|i| leading_number(&tail[i + 9..record_end]));
        if let Some(v) = leading_number(tail) {
            out.push((id, v, min));
        }
        rest = tail;
    }
    out
}

/// Default allowed throughput regression (25%): the gate fails only when the quick run's
/// throughput on a workload drops below 75% of the checked-in baseline's.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// One row of the perf-gate comparison.
#[derive(Clone, Debug)]
pub struct GateRow {
    /// Benchmark id.
    pub id: String,
    /// Quick-run median, ns.
    pub quick_ns: f64,
    /// Checked-in baseline median, ns.
    pub baseline_ns: f64,
    /// `baseline / quick`: > 1 means the quick run is faster than the baseline.
    pub throughput_ratio: f64,
    /// Whether this row violates the tolerance.
    pub regressed: bool,
}

/// Compares quick records against baseline `(id, median_ns)` pairs.
///
/// The quick side is judged by its **fastest** sample (`min(min_ns, median_ns)`), not
/// its median: CI boxes share hosts, and interference inflates most samples of a run by
/// large, correlated factors — but the minimum over nine samples is a stable estimate
/// of the machine's clean per-iteration time, which is what a code regression actually
/// moves.  Returns the matched rows; ids missing from every baseline are skipped (new
/// workloads gate nothing until their baseline is checked in).
pub fn compare_against_baselines(
    quick: &[QuickRecord],
    baselines: &[(String, f64)],
    tolerance: f64,
) -> Vec<GateRow> {
    quick
        .iter()
        .filter_map(|q| {
            let baseline_ns = baselines
                .iter()
                .find(|(id, _)| *id == q.id)
                .map(|(_, ns)| *ns)?;
            let quick_ns = q.min_ns.min(q.median_ns);
            let throughput_ratio = baseline_ns / quick_ns;
            Some(GateRow {
                id: q.id.clone(),
                quick_ns,
                baseline_ns,
                throughput_ratio,
                regressed: throughput_ratio < 1.0 - tolerance,
            })
        })
        .collect()
}

/// The gate tolerance: `PERF_GATE_TOLERANCE` (a fraction in `(0, 1)`) or the default.
pub fn gate_tolerance() -> f64 {
    std::env::var("PERF_GATE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|t| *t > 0.0 && *t < 1.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, median_ns: f64) -> QuickRecord {
        QuickRecord {
            id: id.to_string(),
            median_ns,
            mean_ns: median_ns,
            min_ns: median_ns,
            max_ns: median_ns,
            samples: 1,
            iters_per_sample: 1,
        }
    }

    #[test]
    fn parses_array_schema() {
        let json = r#"[
  {"id": "a/fast/12q", "median_ns": 123.5, "mean_ns": 130.0, "samples": 10},
  {"id": "b/naive/12q", "median_ns": 999.0, "mean_ns": 1000.0, "samples": 10}
]"#;
        let records = parse_median_records(json);
        assert_eq!(
            records,
            vec![
                ("a/fast/12q".to_string(), 123.5),
                ("b/naive/12q".to_string(), 999.0)
            ]
        );
    }

    #[test]
    fn parses_nested_noise_schema() {
        let json = r#"{
  "throughput": [
    {"id": "noisy_eval/trajectories/16", "median_ns": 5.5e6, "mean_ns": 6e6, "samples": 10}
  ],
  "quality": {"instance": "ieee14"}
}"#;
        let records = parse_median_records(json);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0, "noisy_eval/trajectories/16");
        assert!((records[0].1 - 5.5e6).abs() < 1.0);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let baselines = vec![("k".to_string(), 100.0)];
        // 20% slower: within the 25% default tolerance.
        let rows = compare_against_baselines(&[record("k", 125.0)], &baselines, 0.25);
        assert!(!rows[0].regressed);
        // 50% throughput loss: regression.
        let rows = compare_against_baselines(&[record("k", 200.0)], &baselines, 0.25);
        assert!(rows[0].regressed);
        // Faster than baseline never fails.
        let rows = compare_against_baselines(&[record("k", 50.0)], &baselines, 0.25);
        assert!(!rows[0].regressed && rows[0].throughput_ratio > 1.9);
    }

    #[test]
    fn unmatched_ids_are_skipped() {
        let rows = compare_against_baselines(
            &[record("brand-new-workload", 10.0)],
            &[("other".to_string(), 100.0)],
            0.25,
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let records = vec![record("x/fast/12q", 42.0), record("y/fast/12q", 7.0)];
        let parsed = parse_median_records(&records_to_json(&records));
        assert_eq!(
            parsed,
            vec![
                ("x/fast/12q".to_string(), 42.0),
                ("y/fast/12q".to_string(), 7.0)
            ]
        );
    }
}
