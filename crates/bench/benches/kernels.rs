//! Criterion micro-benchmarks for the compute kernels underlying every experiment:
//! Pauli-sum expectation values, circuit simulation, Pauli propagation, Lanczos ground
//! states, spectral clustering, and a miniature end-to-end TreeVQA step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qcircuit::{Entanglement, HardwareEfficientAnsatz};
use qchem::MoleculeSpec;
use qop::{ground_energy, LanczosOptions, Statevector};
use qsim::{run_circuit, PauliPropagator, PauliPropagatorConfig};
use treevqa::{TreeVqa, TreeVqaConfig};
use vqa::{InitialState, StatevectorBackend, VqaApplication, VqaTask};

fn bench_expectation(c: &mut Criterion) {
    let molecule = MoleculeSpec::beh2();
    let ham = molecule.hamiltonian(molecule.equilibrium_bond);
    let state = Statevector::uniform_superposition(molecule.num_qubits);
    c.bench_function("pauli_op_expectation_beh2", |b| {
        b.iter(|| std::hint::black_box(ham.expectation(&state)))
    });
}

fn bench_circuit_simulation(c: &mut Criterion) {
    let ansatz = HardwareEfficientAnsatz::new(8, 2, Entanglement::Circular).build();
    let params: Vec<f64> = (0..ansatz.num_parameters()).map(|i| 0.1 * i as f64).collect();
    let init = Statevector::zero_state(8);
    c.bench_function("statevector_hea_8q_2rep", |b| {
        b.iter(|| std::hint::black_box(run_circuit(&ansatz, &params, &init)))
    });
}

fn bench_pauli_propagation(c: &mut Criterion) {
    let ansatz = HardwareEfficientAnsatz::new(16, 1, Entanglement::Linear).build();
    let params: Vec<f64> = (0..ansatz.num_parameters()).map(|i| 0.05 * i as f64).collect();
    let ham = MoleculeSpec::c2h2().hamiltonian(1.2);
    let prop = PauliPropagator::new(PauliPropagatorConfig {
        max_weight: 4,
        coefficient_threshold: 1e-6,
        max_terms: 20_000,
    });
    c.bench_function("pauli_propagation_c2h2_16q", |b| {
        b.iter(|| std::hint::black_box(prop.expectation(&ansatz, &params, &ham, 0)))
    });
}

fn bench_lanczos(c: &mut Criterion) {
    let ham = qchem::transverse_field_ising(8, 1.0, 1.0);
    c.bench_function("lanczos_ground_energy_tfim_8q", |b| {
        b.iter(|| std::hint::black_box(ground_energy(&ham, &LanczosOptions::default())))
    });
}

fn bench_spectral_clustering(c: &mut Criterion) {
    let molecule = MoleculeSpec::lih();
    let hams: Vec<_> = molecule
        .bond_lengths(10)
        .into_iter()
        .map(|b| molecule.hamiltonian(b))
        .collect();
    let distances: Vec<Vec<f64>> = hams
        .iter()
        .map(|a| hams.iter().map(|b| a.l1_distance(b)).collect())
        .collect();
    c.bench_function("spectral_bipartition_10_tasks", |b| {
        b.iter(|| {
            let sim = cluster::SimilarityMatrix::from_distances(&distances);
            std::hint::black_box(cluster::spectral_bipartition(&sim, 7))
        })
    });
}

fn bench_treevqa_short_run(c: &mut Criterion) {
    let molecule = MoleculeSpec::h2();
    let tasks: Vec<VqaTask> = molecule
        .tasks(3)
        .into_iter()
        .map(|(bond, ham)| VqaTask::new(format!("r={bond:.3}"), bond, ham))
        .collect();
    let ansatz = HardwareEfficientAnsatz::new(molecule.num_qubits, 1, Entanglement::Circular).build();
    let app = VqaApplication::new(
        "bench",
        tasks,
        ansatz,
        InitialState::Basis(molecule.hartree_fock_state()),
    );
    let config = TreeVqaConfig {
        max_cluster_iterations: 30,
        record_every: 10,
        ..Default::default()
    };
    c.bench_function("treevqa_30_iterations_h2_3_tasks", |b| {
        b.iter_batched(
            || (TreeVqa::new(app.clone(), config.clone()), StatevectorBackend::new()),
            |(tree, mut backend)| std::hint::black_box(tree.run(&mut backend)),
            BatchSize::SmallInput,
        )
    });
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = kernels;
    config = configure();
    targets = bench_expectation, bench_circuit_simulation, bench_pauli_propagation,
              bench_lanczos, bench_spectral_clustering, bench_treevqa_short_run
}
criterion_main!(kernels);
