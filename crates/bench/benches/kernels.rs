//! Criterion micro-benchmarks for the compute kernels underlying every experiment:
//! Pauli-sum expectation values, circuit simulation, Pauli propagation, Lanczos ground
//! states, spectral clustering, and a miniature end-to-end TreeVQA step — plus
//! before/after comparisons of the optimized gate/expectation kernels against the naive
//! reference implementations retained in `qsim::reference`.
//!
//! Running `cargo bench -p treevqa_bench --bench kernels` also writes a machine-readable
//! `BENCH_kernels.json` summary (all timings) and prints the fast-vs-naive speedup table.

use criterion::{criterion_group, BatchSize, Criterion};
use qchem::MoleculeSpec;
use qcircuit::{Angle, Entanglement, Gate, HardwareEfficientAnsatz};
use qop::{ground_energy, LanczosOptions, PauliOp, Statevector};
use qsim::{reference, run_circuit, PauliPropagator, PauliPropagatorConfig};
use treevqa::{TreeVqa, TreeVqaConfig};
use treevqa_bench::workloads::{
    dense_state, mixed_rotation_string, synthetic_hamiltonian, uccsd_rotation_string,
};
use vqa::{InitialState, StatevectorBackend, VqaApplication, VqaTask};

fn bench_expectation(c: &mut Criterion) {
    let molecule = MoleculeSpec::beh2();
    let ham = molecule.hamiltonian(molecule.equilibrium_bond);
    let state = Statevector::uniform_superposition(molecule.num_qubits);
    c.bench_function("pauli_op_expectation_beh2", |b| {
        b.iter(|| std::hint::black_box(ham.expectation(&state)))
    });
}

fn bench_circuit_simulation(c: &mut Criterion) {
    let ansatz = HardwareEfficientAnsatz::new(8, 2, Entanglement::Circular).build();
    let params: Vec<f64> = (0..ansatz.num_parameters())
        .map(|i| 0.1 * i as f64)
        .collect();
    let init = Statevector::zero_state(8);
    c.bench_function("statevector_hea_8q_2rep", |b| {
        b.iter(|| std::hint::black_box(run_circuit(&ansatz, &params, &init)))
    });
}

fn bench_pauli_propagation(c: &mut Criterion) {
    let ansatz = HardwareEfficientAnsatz::new(16, 1, Entanglement::Linear).build();
    let params: Vec<f64> = (0..ansatz.num_parameters())
        .map(|i| 0.05 * i as f64)
        .collect();
    let ham = MoleculeSpec::c2h2().hamiltonian(1.2);
    let prop = PauliPropagator::new(PauliPropagatorConfig {
        max_weight: 4,
        coefficient_threshold: 1e-6,
        max_terms: 20_000,
    });
    c.bench_function("pauli_propagation_c2h2_16q", |b| {
        b.iter(|| std::hint::black_box(prop.expectation(&ansatz, &params, &ham, 0)))
    });
}

fn bench_lanczos(c: &mut Criterion) {
    let ham = qchem::transverse_field_ising(8, 1.0, 1.0);
    c.bench_function("lanczos_ground_energy_tfim_8q", |b| {
        b.iter(|| std::hint::black_box(ground_energy(&ham, &LanczosOptions::default())))
    });
}

fn bench_spectral_clustering(c: &mut Criterion) {
    let molecule = MoleculeSpec::lih();
    let hams: Vec<_> = molecule
        .bond_lengths(10)
        .into_iter()
        .map(|b| molecule.hamiltonian(b))
        .collect();
    let distances: Vec<Vec<f64>> = hams
        .iter()
        .map(|a| hams.iter().map(|b| a.l1_distance(b)).collect())
        .collect();
    c.bench_function("spectral_bipartition_10_tasks", |b| {
        b.iter(|| {
            let sim = cluster::SimilarityMatrix::from_distances(&distances);
            std::hint::black_box(cluster::spectral_bipartition(&sim, 7))
        })
    });
}

fn bench_treevqa_short_run(c: &mut Criterion) {
    let molecule = MoleculeSpec::h2();
    let tasks: Vec<VqaTask> = molecule
        .tasks(3)
        .into_iter()
        .map(|(bond, ham)| VqaTask::new(format!("r={bond:.3}"), bond, ham))
        .collect();
    let ansatz =
        HardwareEfficientAnsatz::new(molecule.num_qubits, 1, Entanglement::Circular).build();
    let app = VqaApplication::new(
        "bench",
        tasks,
        ansatz,
        InitialState::Basis(molecule.hartree_fock_state()),
    );
    let config = TreeVqaConfig {
        max_cluster_iterations: 30,
        record_every: 10,
        ..Default::default()
    };
    c.bench_function("treevqa_30_iterations_h2_3_tasks", |b| {
        b.iter_batched(
            || {
                (
                    TreeVqa::new(app.clone(), config.clone()),
                    qexec::Executor::single(StatevectorBackend::new()),
                )
            },
            |(tree, executor)| std::hint::black_box(tree.run(&executor).expect("well-formed")),
            BatchSize::SmallInput,
        )
    });
}

/// The qubit sizes for the fast-vs-naive comparisons (paper-scale register sweep).
const COMPARE_QUBITS: [usize; 4] = [12, 16, 20, 22];

fn bench_single_qubit_kernels(c: &mut Criterion) {
    for n in COMPARE_QUBITS {
        let gate = Gate::Rx(n / 2, Angle::Fixed(0.7));
        let mut state = dense_state(n);
        c.bench_function(&format!("single_qubit_rx/fast/{n}q"), |b| {
            b.iter(|| qsim::apply_gate(&mut state, &gate, &[]))
        });
        let mut amps = dense_state(n).to_amplitudes();
        c.bench_function(&format!("single_qubit_rx/naive/{n}q"), |b| {
            b.iter(|| reference::apply_gate_amps(&mut amps, &gate, &[]))
        });
    }
}

fn bench_cx_ladder_kernels(c: &mut Criterion) {
    for n in COMPARE_QUBITS {
        let ladder: Vec<Gate> = (0..n - 1).map(|q| Gate::Cx(q, q + 1)).collect();
        let mut state = dense_state(n);
        c.bench_function(&format!("cx_ladder/fast/{n}q"), |b| {
            b.iter(|| {
                for gate in &ladder {
                    qsim::apply_gate(&mut state, gate, &[]);
                }
            })
        });
        let mut amps = dense_state(n).to_amplitudes();
        c.bench_function(&format!("cx_ladder/naive/{n}q"), |b| {
            b.iter(|| {
                for gate in &ladder {
                    reference::apply_gate_amps(&mut amps, gate, &[]);
                }
            })
        });
    }
}

fn bench_pauli_rotation_kernels(c: &mut Criterion) {
    // The headline comparison uses the UCCSD/Jordan–Wigner excitation shape (the strings
    // the VQE hot loop actually rotates by); the x-dense worst case is tracked separately.
    for n in COMPARE_QUBITS {
        let string = uccsd_rotation_string(n);
        let mut state = dense_state(n);
        c.bench_function(&format!("pauli_rotation/fast/{n}q"), |b| {
            b.iter(|| qsim::apply_pauli_rotation(&mut state, &string, 0.9))
        });
        let mut amps = dense_state(n).to_amplitudes();
        c.bench_function(&format!("pauli_rotation/naive/{n}q"), |b| {
            b.iter(|| reference::apply_pauli_rotation_amps(&mut amps, &string, 0.9))
        });
    }
    for n in COMPARE_QUBITS {
        let string = mixed_rotation_string(n);
        let mut state = dense_state(n);
        c.bench_function(&format!("pauli_rotation_xdense/fast/{n}q"), |b| {
            b.iter(|| qsim::apply_pauli_rotation(&mut state, &string, 0.9))
        });
        let mut amps = dense_state(n).to_amplitudes();
        c.bench_function(&format!("pauli_rotation_xdense/naive/{n}q"), |b| {
            b.iter(|| reference::apply_pauli_rotation_amps(&mut amps, &string, 0.9))
        });
    }
}

fn bench_expectation_kernels(c: &mut Criterion) {
    for n in COMPARE_QUBITS {
        let op = synthetic_hamiltonian(n);
        let state = dense_state(n);
        c.bench_function(&format!("hamiltonian_expectation/fast/{n}q"), |b| {
            b.iter(|| std::hint::black_box(op.expectation(&state)))
        });
        let amps = state.to_amplitudes();
        c.bench_function(&format!("hamiltonian_expectation/naive/{n}q"), |b| {
            b.iter(|| {
                let serial: f64 = op
                    .terms()
                    .iter()
                    .map(|t| {
                        t.coefficient * PauliOp::string_expectation_naive_amps(&t.string, &amps)
                    })
                    .sum();
                std::hint::black_box(serial)
            })
        });
    }
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = kernels;
    config = configure();
    targets = bench_expectation, bench_circuit_simulation, bench_pauli_propagation,
              bench_lanczos, bench_spectral_clustering, bench_treevqa_short_run
}

criterion_group! {
    name = kernel_comparisons;
    config = configure();
    targets = bench_single_qubit_kernels, bench_cx_ladder_kernels,
              bench_pauli_rotation_kernels, bench_expectation_kernels
}

/// Prints the fast-vs-naive speedup table from the recorded results.
fn print_speedups() {
    let results = criterion::all_results();
    let median = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.median_ns);
    println!("\n== fast-vs-naive kernel speedups (median) ==");
    for kernel in [
        "single_qubit_rx",
        "cx_ladder",
        "pauli_rotation",
        "pauli_rotation_xdense",
        "hamiltonian_expectation",
    ] {
        for n in COMPARE_QUBITS {
            if let (Some(fast), Some(naive)) = (
                median(&format!("{kernel}/fast/{n}q")),
                median(&format!("{kernel}/naive/{n}q")),
            ) {
                println!("{kernel:<24} {n:>2}q  {:.2}x", naive / fast);
            }
        }
    }
}

fn main() {
    // Comparisons run first so a long tail of macro benches cannot starve them.
    kernel_comparisons();
    kernels();
    print_speedups();
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let entries =
        criterion::write_summary_json(json_path).expect("failed to write BENCH_kernels.json");
    println!("\nwrote {json_path} ({entries} benchmarks)");
}
