//! Criterion benchmarks for PR 2's execution engine: the fused [`CompiledCircuit`]
//! against the per-gate interpreter, and batched backend evaluation against the serial
//! evaluate loop at several batch sizes.
//!
//! Running `cargo bench -p treevqa_bench --bench batch` prints the compiled-vs-interpreted
//! and batched-vs-serial speedup tables and writes the machine-readable
//! `BENCH_batch.json` summary at the workspace root.

use criterion::{criterion_group, Criterion};
use qcircuit::{Angle, Circuit, Entanglement, Gate, HardwareEfficientAnsatz};
use qop::{PauliOp, PauliString, Statevector};
use qsim::CompiledCircuit;
use vqa::{Backend, EvalRequest, InitialState, StatevectorBackend};

/// A Pauli-rotation-heavy ansatz: QAOA-shaped layers of diagonal ZZ-chain rotations
/// (ring + chords, the diagonal-batching target) alternating with Rx mixers, preceded by
/// a Hadamard wall.  This is the gate mix the paper's MaxCut and spin-chain workloads
/// spend their time in.
fn rotation_heavy_ansatz(num_qubits: usize, layers: usize) -> Circuit {
    let mut circ = Circuit::new(num_qubits);
    for q in 0..num_qubits {
        circ.push(Gate::H(q));
    }
    let mut slot = 0usize;
    for _ in 0..layers {
        // Cost layer: ZZ ring plus next-nearest chords — all diagonal, one fused pass.
        for step in [1usize, 2] {
            for q in 0..num_qubits {
                let mut label = vec!['I'; num_qubits];
                label[q] = 'Z';
                label[(q + step) % num_qubits] = 'Z';
                let string = PauliString::from_label(&label.iter().collect::<String>()).unwrap();
                circ.push(Gate::PauliRotation(string, Angle::param(slot)));
                slot += 1;
            }
        }
        // Mixer layer.
        for q in 0..num_qubits {
            circ.push(Gate::Rx(q, Angle::param(slot)));
            slot += 1;
        }
    }
    circ
}

fn ansatz_params(circ: &Circuit) -> Vec<f64> {
    (0..circ.num_parameters())
        .map(|i| (i as f64 * 0.37).sin())
        .collect()
}

const COMPILED_QUBITS: [usize; 3] = [12, 16, 18];

/// Fused compiled execution vs the retained per-gate interpreter on the
/// rotation-heavy ansatz (the ISSUE's headline fusion comparison).
fn bench_compiled_vs_interpreted(c: &mut Criterion) {
    for n in COMPILED_QUBITS {
        let circ = rotation_heavy_ansatz(n, 2);
        let params = ansatz_params(&circ);
        let compiled = CompiledCircuit::compile(&circ);
        let initial = Statevector::zero_state(n);
        let mut scratch = Statevector::zero_state(n);
        c.bench_function(&format!("circuit_exec/compiled/{n}q"), |b| {
            b.iter(|| {
                compiled.execute_into(&params, &initial, &mut scratch);
                std::hint::black_box(&scratch);
            })
        });
        let mut scratch = Statevector::zero_state(n);
        c.bench_function(&format!("circuit_exec/interpreted/{n}q"), |b| {
            b.iter(|| {
                scratch.clone_from(&initial);
                qsim::interpret_circuit_in_place(&circ, &params, &mut scratch);
                std::hint::black_box(&scratch);
            })
        });
    }
}

/// Compilation also pays on the standard hardware-efficient ansatz (Ry·Rz chains fuse).
fn bench_compiled_hea(c: &mut Criterion) {
    let n = 14;
    let circ = HardwareEfficientAnsatz::new(n, 3, Entanglement::Circular).build();
    let params = ansatz_params(&circ);
    let compiled = CompiledCircuit::compile(&circ);
    let initial = Statevector::zero_state(n);
    let mut scratch = Statevector::zero_state(n);
    c.bench_function(&format!("hea_exec/compiled/{n}q"), |b| {
        b.iter(|| {
            compiled.execute_into(&params, &initial, &mut scratch);
            std::hint::black_box(&scratch);
        })
    });
    let mut scratch = Statevector::zero_state(n);
    c.bench_function(&format!("hea_exec/interpreted/{n}q"), |b| {
        b.iter(|| {
            scratch.clone_from(&initial);
            qsim::interpret_circuit_in_place(&circ, &params, &mut scratch);
            std::hint::black_box(&scratch);
        })
    });
}

/// The three batch sizes of the batched-vs-serial comparison: the SPSA ± pair, a
/// simplex-build-sized batch, and a whole-controller-round-sized batch.
const BATCH_SIZES: [usize; 3] = [2, 8, 32];

/// Batched backend evaluation vs the serial evaluate loop on a 12-qubit TFIM-style
/// Hamiltonian (across-state parallel regime: each state is below the threshold, the
/// batch as a whole is above it).
fn bench_batched_vs_serial(c: &mut Criterion) {
    let n = 12;
    let circ = HardwareEfficientAnsatz::new(n, 2, Entanglement::Circular).build();
    let base = ansatz_params(&circ);
    let mut terms: Vec<(String, f64)> = Vec::new();
    for q in 0..n {
        let mut zz = vec!['I'; n];
        zz[q] = 'Z';
        zz[(q + 1) % n] = 'Z';
        terms.push((zz.iter().collect(), -1.0));
        let mut x = vec!['I'; n];
        x[q] = 'X';
        terms.push((x.iter().collect(), 0.5));
    }
    let refs: Vec<(&str, f64)> = terms.iter().map(|(l, c)| (l.as_str(), *c)).collect();
    let ham = PauliOp::from_labels(n, &refs);

    for batch in BATCH_SIZES {
        let candidates: Vec<Vec<f64>> = (0..batch)
            .map(|k| base.iter().map(|p| p + 0.01 * k as f64).collect())
            .collect();
        let mut backend = StatevectorBackend::with_shots(0);
        c.bench_function(&format!("evaluate/batched/{batch}"), |b| {
            b.iter(|| {
                let requests: Vec<EvalRequest<'_>> = candidates
                    .iter()
                    .map(|candidate| EvalRequest {
                        circuit: &circ,
                        params: candidate,
                        initial: &InitialState::Basis(0),
                        charged_op: &ham,
                        free_ops: &[],
                    })
                    .collect();
                std::hint::black_box(backend.evaluate_batch(&requests));
            })
        });
        let mut backend = StatevectorBackend::with_shots(0);
        c.bench_function(&format!("evaluate/serial/{batch}"), |b| {
            b.iter(|| {
                for candidate in &candidates {
                    std::hint::black_box(backend.evaluate(
                        &circ,
                        candidate,
                        &InitialState::Basis(0),
                        &ham,
                        &[],
                    ));
                }
            })
        });
    }
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = batch_benches;
    config = configure();
    targets = bench_compiled_vs_interpreted, bench_compiled_hea, bench_batched_vs_serial
}

/// Prints the speedup tables from the recorded results.
fn print_speedups() {
    let results = criterion::all_results();
    let median = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.median_ns);
    println!("\n== compiled-vs-interpreted circuit execution (median) ==");
    for n in COMPILED_QUBITS {
        if let (Some(fast), Some(naive)) = (
            median(&format!("circuit_exec/compiled/{n}q")),
            median(&format!("circuit_exec/interpreted/{n}q")),
        ) {
            println!("rotation-heavy ansatz    {n:>2}q  {:.2}x", naive / fast);
        }
    }
    if let (Some(fast), Some(naive)) = (
        median("hea_exec/compiled/14q"),
        median("hea_exec/interpreted/14q"),
    ) {
        println!("hardware-efficient       14q  {:.2}x", naive / fast);
    }
    println!("\n== batched-vs-serial backend evaluation (median) ==");
    for batch in BATCH_SIZES {
        if let (Some(batched), Some(serial)) = (
            median(&format!("evaluate/batched/{batch}")),
            median(&format!("evaluate/serial/{batch}")),
        ) {
            println!("batch size {batch:>3}  {:.2}x", serial / batched);
        }
    }
}

fn main() {
    batch_benches();
    print_speedups();
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    let entries =
        criterion::write_summary_json(json_path).expect("failed to write BENCH_batch.json");
    println!("\nwrote {json_path} ({entries} benchmarks)");
}
