//! Criterion benchmarks for PR 2's execution engine: the fused [`CompiledCircuit`]
//! against the per-gate interpreter, and batched backend evaluation against the serial
//! evaluate loop at several batch sizes.
//!
//! Running `cargo bench -p treevqa_bench --bench batch` prints the compiled-vs-interpreted
//! and batched-vs-serial speedup tables and writes the machine-readable
//! `BENCH_batch.json` summary at the workspace root.

use criterion::{criterion_group, Criterion};
use qcircuit::{Entanglement, HardwareEfficientAnsatz};
use qop::Statevector;
use qsim::CompiledCircuit;
use treevqa_bench::workloads::{ansatz_params, rotation_heavy_ansatz, tfim_hamiltonian};
use vqa::{Backend, EvalRequest, InitialState, StatevectorBackend};

const COMPILED_QUBITS: [usize; 3] = [12, 16, 18];

/// Fused compiled execution vs the retained per-gate interpreter on the
/// rotation-heavy ansatz (the ISSUE's headline fusion comparison).
fn bench_compiled_vs_interpreted(c: &mut Criterion) {
    for n in COMPILED_QUBITS {
        let circ = rotation_heavy_ansatz(n, 2);
        let params = ansatz_params(&circ);
        let compiled = CompiledCircuit::compile(&circ);
        let initial = Statevector::zero_state(n);
        let mut scratch = Statevector::zero_state(n);
        c.bench_function(&format!("circuit_exec/compiled/{n}q"), |b| {
            b.iter(|| {
                compiled.execute_into(&params, &initial, &mut scratch);
                std::hint::black_box(&scratch);
            })
        });
        let mut scratch = Statevector::zero_state(n);
        c.bench_function(&format!("circuit_exec/interpreted/{n}q"), |b| {
            b.iter(|| {
                scratch.clone_from(&initial);
                qsim::interpret_circuit_in_place(&circ, &params, &mut scratch);
                std::hint::black_box(&scratch);
            })
        });
    }
}

/// Compilation also pays on the standard hardware-efficient ansatz (Ry·Rz chains fuse).
fn bench_compiled_hea(c: &mut Criterion) {
    let n = 14;
    let circ = HardwareEfficientAnsatz::new(n, 3, Entanglement::Circular).build();
    let params = ansatz_params(&circ);
    let compiled = CompiledCircuit::compile(&circ);
    let initial = Statevector::zero_state(n);
    let mut scratch = Statevector::zero_state(n);
    c.bench_function(&format!("hea_exec/compiled/{n}q"), |b| {
        b.iter(|| {
            compiled.execute_into(&params, &initial, &mut scratch);
            std::hint::black_box(&scratch);
        })
    });
    let mut scratch = Statevector::zero_state(n);
    c.bench_function(&format!("hea_exec/interpreted/{n}q"), |b| {
        b.iter(|| {
            scratch.clone_from(&initial);
            qsim::interpret_circuit_in_place(&circ, &params, &mut scratch);
            std::hint::black_box(&scratch);
        })
    });
}

/// The three batch sizes of the batched-vs-serial comparison: the SPSA ± pair, a
/// simplex-build-sized batch, and a whole-controller-round-sized batch.
const BATCH_SIZES: [usize; 3] = [2, 8, 32];

/// Batched backend evaluation vs the serial evaluate loop on a 12-qubit TFIM-style
/// Hamiltonian (across-state parallel regime: each state is below the threshold, the
/// batch as a whole is above it).
fn bench_batched_vs_serial(c: &mut Criterion) {
    let n = 12;
    let circ = HardwareEfficientAnsatz::new(n, 2, Entanglement::Circular).build();
    let base = ansatz_params(&circ);
    let ham = tfim_hamiltonian(n);

    for batch in BATCH_SIZES {
        let candidates: Vec<Vec<f64>> = (0..batch)
            .map(|k| base.iter().map(|p| p + 0.01 * k as f64).collect())
            .collect();
        let mut backend = StatevectorBackend::with_shots(0);
        c.bench_function(&format!("evaluate/batched/{batch}"), |b| {
            b.iter(|| {
                let requests: Vec<EvalRequest<'_>> = candidates
                    .iter()
                    .map(|candidate| EvalRequest {
                        circuit: &circ,
                        params: candidate,
                        initial: &InitialState::Basis(0),
                        charged_op: &ham,
                        free_ops: &[],
                        stream: None,
                    })
                    .collect();
                std::hint::black_box(backend.evaluate_batch(&requests));
            })
        });
        let mut backend = StatevectorBackend::with_shots(0);
        c.bench_function(&format!("evaluate/serial/{batch}"), |b| {
            b.iter(|| {
                for candidate in &candidates {
                    std::hint::black_box(backend.evaluate(
                        &circ,
                        candidate,
                        &InitialState::Basis(0),
                        &ham,
                        &[],
                    ));
                }
            })
        });
    }
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = batch_benches;
    config = configure();
    targets = bench_compiled_vs_interpreted, bench_compiled_hea, bench_batched_vs_serial
}

/// Prints the speedup tables from the recorded results.
fn print_speedups() {
    let results = criterion::all_results();
    let median = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.median_ns);
    println!("\n== compiled-vs-interpreted circuit execution (median) ==");
    for n in COMPILED_QUBITS {
        if let (Some(fast), Some(naive)) = (
            median(&format!("circuit_exec/compiled/{n}q")),
            median(&format!("circuit_exec/interpreted/{n}q")),
        ) {
            println!("rotation-heavy ansatz    {n:>2}q  {:.2}x", naive / fast);
        }
    }
    if let (Some(fast), Some(naive)) = (
        median("hea_exec/compiled/14q"),
        median("hea_exec/interpreted/14q"),
    ) {
        println!("hardware-efficient       14q  {:.2}x", naive / fast);
    }
    println!("\n== batched-vs-serial backend evaluation (median) ==");
    for batch in BATCH_SIZES {
        if let (Some(batched), Some(serial)) = (
            median(&format!("evaluate/batched/{batch}")),
            median(&format!("evaluate/serial/{batch}")),
        ) {
            println!("batch size {batch:>3}  {:.2}x", serial / batched);
        }
    }
}

fn main() {
    batch_benches();
    print_speedups();
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    let entries =
        criterion::write_summary_json(json_path).expect("failed to write BENCH_batch.json");
    println!("\nwrote {json_path} ({entries} benchmarks)");
}
