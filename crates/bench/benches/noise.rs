//! Criterion benchmarks + quality study for the `qnoise` trajectory-noise subsystem.
//!
//! Two sections, both written into `BENCH_noise.json` at the workspace root:
//!
//! * **Throughput** — trajectories/second of the noisy statevector backend at several
//!   trajectory counts on a 12-qubit QAOA-shaped ansatz (the diagonal-pass-heavy gate
//!   mix where the batch-table reuse matters), against the ideal single-rollout
//!   baseline.
//! * **Quality** — ideal vs noisy vs ZNE-mitigated energy of one optimized IEEE-14
//!   MaxCut instance (the ISSUE's ideal/noisy/mitigated comparison), with approximation
//!   ratios against the brute-force max cut.
//!
//! Run with `cargo bench -p treevqa_bench --bench noise`.

use criterion::{criterion_group, Criterion};
use qcircuit::{QaoaAnsatz, QaoaStyle};
use qexec::{run_single_vqa, Executor};
use qgraph::{ieee14_base_graph, maxcut_cost_hamiltonian};
use qopt::{OptimizerSpec, SpsaConfig};
use treevqa_bench::workloads::{
    ansatz_params, bench_noise_model as device_model, rotation_heavy_ansatz, zz_ring_hamiltonian,
};
use vqa::{
    red_qaoa_initial_point, Backend, InitialState, NoisyStatevectorBackend, StatevectorBackend,
    VqaRunConfig, VqaTask, ZneBackend,
};

const TRAJECTORY_COUNTS: [usize; 3] = [4, 16, 64];
const BENCH_QUBITS: usize = 12;

fn bench_trajectory_throughput(c: &mut Criterion) {
    let circ = rotation_heavy_ansatz(BENCH_QUBITS, 2);
    let params = ansatz_params(&circ);
    let ham = zz_ring_hamiltonian(BENCH_QUBITS);

    let mut ideal = StatevectorBackend::with_shots(0);
    c.bench_function("noisy_eval/ideal_baseline", |b| {
        b.iter(|| {
            std::hint::black_box(ideal.evaluate(
                &circ,
                &params,
                &InitialState::Basis(0),
                &ham,
                &[],
            ));
        })
    });
    for k in TRAJECTORY_COUNTS {
        let mut backend = NoisyStatevectorBackend::new(device_model(), 0, 7).with_trajectories(k);
        c.bench_function(&format!("noisy_eval/trajectories/{k}"), |b| {
            b.iter(|| {
                std::hint::black_box(backend.evaluate(
                    &circ,
                    &params,
                    &InitialState::Basis(0),
                    &ham,
                    &[],
                ));
            })
        });
    }
    let mut zne =
        ZneBackend::new(NoisyStatevectorBackend::new(device_model(), 0, 7).with_trajectories(16));
    c.bench_function("noisy_eval/zne_135_traj16", |b| {
        b.iter(|| {
            std::hint::black_box(zne.evaluate(&circ, &params, &InitialState::Basis(0), &ham, &[]));
        })
    });
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = noise_benches;
    config = configure();
    targets = bench_trajectory_throughput
}

struct QualityArm {
    name: &'static str,
    energy: f64,
    ratio: f64,
}

/// Ideal vs noisy vs ZNE quality on the IEEE-14 MaxCut instance: optimize ideally,
/// then estimate the optimized point on each substrate.
fn quality_study() -> (f64, Vec<QualityArm>) {
    let graph = ieee14_base_graph();
    let cost = maxcut_cost_hamiltonian(&graph);
    let qaoa = QaoaAnsatz::new(&cost, 1, QaoaStyle::MultiAngle).expect("diagonal cost");
    let ansatz = qaoa.build();
    let start = red_qaoa_initial_point(&qaoa, &graph);
    let task = VqaTask::new("ieee14", 1.0, cost.clone());
    let config = VqaRunConfig {
        max_iterations: 120,
        optimizer: OptimizerSpec::Spsa(SpsaConfig {
            a: 0.2,
            ..Default::default()
        }),
        seed: 5,
        record_every: 40,
    };
    let ideal_executor = Executor::single(StatevectorBackend::with_shots(0));
    let run = run_single_vqa(
        &task,
        &ansatz,
        &InitialState::Basis(0),
        &start,
        &ideal_executor.client(),
        &config,
    )
    .expect("well-formed workload");
    let theta = &run.final_params;
    let (max_cut, _) = graph.max_cut_brute_force();
    let k = 256;

    let ideal = StatevectorBackend::with_shots(0)
        .evaluate(&ansatz, theta, &InitialState::Basis(0), &cost, &[])
        .0;
    let noisy = NoisyStatevectorBackend::new(device_model(), 0, 11)
        .with_trajectories(k)
        .evaluate(&ansatz, theta, &InitialState::Basis(0), &cost, &[])
        .0;
    let zne =
        ZneBackend::new(NoisyStatevectorBackend::new(device_model(), 0, 11).with_trajectories(k))
            .evaluate(&ansatz, theta, &InitialState::Basis(0), &cost, &[])
            .0;

    let arm = |name, energy: f64| QualityArm {
        name,
        energy,
        ratio: -energy / max_cut,
    };
    (
        max_cut,
        vec![arm("ideal", ideal), arm("noisy", noisy), arm("zne", zne)],
    )
}

fn main() {
    noise_benches();

    let results = criterion::all_results();
    let median = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.median_ns);
    println!("\n== trajectory throughput ({BENCH_QUBITS}q QAOA-shaped ansatz, median) ==");
    if let Some(base) = median("noisy_eval/ideal_baseline") {
        println!("ideal single rollout      {:>10.0} rollouts/s", 1e9 / base);
    }
    for k in TRAJECTORY_COUNTS {
        if let Some(ns) = median(&format!("noisy_eval/trajectories/{k}")) {
            println!(
                "{k:>3} trajectories/eval     {:>10.0} trajectories/s",
                k as f64 * 1e9 / ns
            );
        }
    }

    println!("\n== ideal vs noisy vs ZNE on IEEE-14 MaxCut ==");
    let (max_cut, arms) = quality_study();
    for arm in &arms {
        println!(
            "{:<6} energy {:>9.4}   approx. ratio {:>6.4}",
            arm.name, arm.energy, arm.ratio
        );
    }

    // BENCH_noise.json: criterion records plus the quality section, hand-serialized
    // (the vendored serde does not serialize).
    let mut json = String::from("{\n  \"throughput\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}}}{}\n",
            r.id.replace('"', "'"),
            r.median_ns,
            r.mean_ns,
            r.samples,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"quality\": {{\n    \"instance\": \"ieee14 MaxCut, ma-QAOA p=1\",\n    \"model\": \"ibm_like p1=5e-4 p2=4e-3 gamma=1e-3 readout=0.01\",\n    \"trajectories\": 256,\n    \"max_cut\": {max_cut:.6},\n"
    ));
    for (i, arm) in arms.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"energy\": {:.6}, \"approx_ratio\": {:.6}}}{}\n",
            arm.name,
            arm.energy,
            arm.ratio,
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_noise.json");
    std::fs::write(json_path, json).expect("failed to write BENCH_noise.json");
    println!("\nwrote {json_path}");
}
