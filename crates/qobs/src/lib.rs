//! # qobs — zero-overhead-when-off observability for the TreeVQA stack
//!
//! The execution service (`qexec`) schedules jobs across fallible backends, the
//! simulator (`qsim`) amortizes compiled circuits over thousands of parameter
//! re-binds, and until this crate existed neither could say where the time went:
//! `Executor::stats()` was seven ad-hoc counters behind the queue lock and nothing
//! recorded which gate sequences were hot.  `qobs` supplies the missing primitives,
//! built so that the *disabled* configuration costs nothing measurable (it is
//! guarded by the repository's perf gate) and the *enabled* configuration stays
//! under a few percent on the `exec_bench` workloads:
//!
//! * [`Counters`] — a sharded set of named atomic event counters.  Each thread
//!   increments its own cache-line-padded shard with a relaxed `fetch_add`, so
//!   concurrent writers never contend on one line; reads sum the shards.
//! * [`Histogram`] — a fixed 64-bucket log₂ latency histogram.  Recording a
//!   nanosecond value is one `leading_zeros` plus three relaxed atomic adds; no
//!   allocation, no lock, no floating point.  Quantiles are estimated from the
//!   bucket boundaries at snapshot time.
//! * [`SpanStore`] / [`Span`] — a job-lifecycle span recorder.  A span is opened
//!   at submit, stamped as it is scheduled into a slate and handed to a backend,
//!   and closed exactly once with a terminal [`Outcome`]; finished spans land in a
//!   fixed-capacity ring buffer (overflow evicts the oldest and counts it as
//!   dropped, it never blocks the hot path) and simultaneously feed the
//!   queue/exec/end-to-end histograms.
//! * [`Registry`] — bundles the above behind one handle, snapshots into the
//!   serde-friendly [`ObsSnapshot`], and renders through [`export`] as a
//!   human-readable table, a JSON document, or Prometheus-style exposition text.
//!
//! ## Enablement model
//!
//! Two switches exist, and they deliberately differ in scope:
//!
//! 1. **Per-registry** — every [`Registry`] is constructed enabled or disabled
//!    (`qexec`'s builder exposes this as `.observability(bool)`).  A disabled
//!    registry still counts events — counters are cheaper than the lock-held
//!    increments they replaced and back `Executor::stats()`, which callers rely on
//!    unconditionally — but records no spans and no histograms, and hands out no
//!    span handles, so the per-job tracing cost vanishes.
//! 2. **Process-wide** — [`enabled()`] reads the `QOBS` environment variable once
//!    (any value other than `0`/`false`/empty turns it on) with a programmatic
//!    override via [`set_enabled`].  Library-layer instruments that have no
//!    registry to hang off — the `qsim` gate-pattern profiler, the `vqa`
//!    compiled-cache counters — consult this flag, as does `qexec`'s builder for
//!    its default.
//!
//! Timestamps come from [`now_ns`]: monotonic nanoseconds since the first
//! observation in the process, so spans serialize as small integers and are
//! immune to wall-clock steps.
//!
//! The crate has no dependencies beyond the workspace's vendored no-op `serde`
//! (the derives are markers; JSON is rendered by hand in [`export`]), keeping it
//! at the very bottom of the dependency graph where `qsim` and `vqa` can use it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod counter;
pub mod export;
mod histogram;
mod registry;
mod span;

pub use counter::{Counters, LabeledCounters};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{ObsSnapshot, Registry, SpanSummary};
pub use span::{FinishedSpan, Outcome, Span, SpanLabels, SpanStore};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default capacity of a [`SpanStore`] ring buffer (overridable via
/// `QOBS_RING_CAP` or [`Registry::with_capacity`]).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

// Process-wide enablement: 0 = follow the QOBS env var, 1 = forced on, 2 = forced off.
static FORCED: AtomicU8 = AtomicU8::new(0);
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether process-wide observability is on.
///
/// Reads the `QOBS` environment variable once per process (`1`/`true`/anything
/// except `0`, `false`, or the empty string enables), unless [`set_enabled`] has
/// forced a value.  Library-level instruments (the `qsim` pattern profiler, the
/// `vqa` cache counters) check this; the `qexec` builder uses it as the default
/// for its per-executor flag.
pub fn enabled() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *ENV_ENABLED.get_or_init(|| {
            std::env::var("QOBS")
                .map(|v| {
                    let v = v.trim();
                    !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"))
                })
                .unwrap_or(false)
        }),
    }
}

/// Force the process-wide flag on or off, overriding the `QOBS` environment
/// variable.  Used by the `exec_trace` example (always on) and by tests that must
/// exercise both modes in one process.
pub fn set_enabled(on: bool) {
    FORCED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Ring capacity from the `QOBS_RING_CAP` environment variable, or the default.
pub fn ring_capacity_from_env() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("QOBS_RING_CAP")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_RING_CAPACITY)
    })
}

/// Monotonic nanoseconds since the first `now_ns` call in this process.
///
/// All span timestamps share this epoch, so durations are plain subtractions and
/// exported values stay small.  Saturates at `u64::MAX` (≈584 years of uptime).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    let nanos = epoch.elapsed().as_nanos();
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn ring_capacity_default_without_env() {
        // QOBS_RING_CAP is not set in the test environment.
        assert_eq!(ring_capacity_from_env(), DEFAULT_RING_CAPACITY);
    }
}
