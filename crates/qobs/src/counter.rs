//! Sharded atomic event counters.
//!
//! A [`Counters`] set holds one `u64` per named event, replicated across a small
//! fixed number of cache-line-padded shards.  Each thread is pinned to a shard
//! (round-robin at first touch, via a thread-local), so concurrent increments
//! from different threads land on different cache lines and never bounce a line
//! between cores — the failure mode of the single-`AtomicU64`-per-event design
//! under the executor's multi-client submit storms.  Reading a counter sums its
//! slot across shards; totals are exact because increments are atomic, merely
//! *spread*, not sampled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of shards.  Enough to separate the handful of threads the workspace
/// runs (worker, clients, rayon pool leaders) without bloating snapshots.
const NUM_SHARDS: usize = 8;

/// One counter slot, padded to a cache line so adjacent events in the same shard
/// do not false-share with each other either.
#[repr(align(64))]
struct Slot(AtomicU64);

/// A set of named event counters with per-thread sharding.
///
/// Construct with a static name table; increment by event index (callers define
/// an index enum or constants matching the table).  Increments use relaxed
/// ordering — counts are statistics, not synchronization.
pub struct Counters {
    names: &'static [&'static str],
    /// `shards[s]` holds one padded slot per name.
    shards: Vec<Box<[Slot]>>,
}

/// Round-robin assignment of threads to shards.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
}

impl Counters {
    /// Create a counter set over `names`; all counts start at zero.
    pub fn new(names: &'static [&'static str]) -> Self {
        let shards = (0..NUM_SHARDS)
            .map(|_| {
                (0..names.len())
                    .map(|_| Slot(AtomicU64::new(0)))
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            })
            .collect();
        Counters { names, shards }
    }

    /// The name table this set was built over, in index order.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Increment event `idx` by one on the calling thread's shard.
    #[inline]
    pub fn inc(&self, idx: usize) {
        self.add(idx, 1);
    }

    /// Add `n` to event `idx` on the calling thread's shard.
    #[inline]
    pub fn add(&self, idx: usize, n: u64) {
        let shard = MY_SHARD.with(|s| *s);
        self.shards[shard][idx].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Exact total for event `idx` (sums all shards).
    pub fn get(&self, idx: usize) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard[idx].0.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot every event as `(name, total)`, in index order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, self.get(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const NAMES: &[&str] = &["a", "b", "c"];

    #[test]
    fn totals_are_exact_across_threads() {
        let c = Arc::new(Counters::new(NAMES));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc(0);
                    c.add(2, 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(0), 8 * 1000);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.get(2), 8 * 1000 * 3);
        assert_eq!(c.snapshot(), vec![("a", 8000), ("b", 0), ("c", 24000)],);
    }
}

/// Dynamically labeled counters, for label sets unknowable at compile time
/// (e.g. one slate tally per execution worker, where the worker count is a
/// runtime knob).  A mutex-held sorted map: strictly for low-rate events — one
/// lock per increment — where the static [`Counters`] table cannot apply.
#[derive(Debug, Default)]
pub struct LabeledCounters {
    entries: Mutex<BTreeMap<String, u64>>,
}

impl LabeledCounters {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the counter named `label`, creating it at zero first.
    pub fn add(&self, label: &str, n: u64) {
        let mut map = self.entries.lock().unwrap();
        match map.get_mut(label) {
            Some(v) => *v += n,
            None => {
                map.insert(label.to_string(), n);
            }
        }
    }

    /// Increment the counter named `label` by one.
    pub fn inc(&self, label: &str) {
        self.add(label, 1);
    }

    /// The counter's total, 0 if it was never touched.
    pub fn get(&self, label: &str) -> u64 {
        self.entries
            .lock()
            .unwrap()
            .get(label)
            .copied()
            .unwrap_or(0)
    }

    /// `(label, total)` pairs in sorted label order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }
}
