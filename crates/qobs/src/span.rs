//! Job-lifecycle span recording.
//!
//! A [`Span`] tracks one job from submission to its terminal event.  The stages
//! mirror the executor's pipeline:
//!
//! ```text
//! submit ──(admitted)──> queued ──> scheduled into a slate ──> executing ──> terminal
//!                                   [mark_scheduled]           [mark_exec]   [finish]
//! ```
//!
//! Stage stamps are relaxed atomics on the span itself; the only lock in the
//! subsystem guards the ring buffer of *finished* spans, taken once per job at
//! terminal time.  The ring has fixed capacity: when full, the oldest span is
//! evicted and counted in [`SpanStore::dropped`], so tracing never applies
//! backpressure to the executor.  Every `finish` also feeds the store's
//! queue/exec/end-to-end latency histograms and per-[`Outcome`] tallies, which is
//! what makes "exactly one terminal event per admitted job" a checkable
//! invariant: `started == finished` and [`SpanStore::open_spans`] `== 0` at
//! quiescence.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::now_ns;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Terminal state of a job span, matching the executor's completion paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Outcome {
    /// The backend produced a result.
    Completed,
    /// The backend (or the service) reported an execution error.
    Failed,
    /// The job's deadline elapsed before execution.
    Expired,
    /// Load shedding evicted the job under an overloaded queue.
    Shed,
    /// The client cancelled the job while it was still queued.
    Cancelled,
    /// The executor shut down before the job ran.
    ShutDown,
}

impl Outcome {
    /// All outcomes, in tally order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Completed,
        Outcome::Failed,
        Outcome::Expired,
        Outcome::Shed,
        Outcome::Cancelled,
        Outcome::ShutDown,
    ];

    /// Stable lowercase label (used by every exporter).
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Failed => "failed",
            Outcome::Expired => "expired",
            Outcome::Shed => "shed",
            Outcome::Cancelled => "cancelled",
            Outcome::ShutDown => "shutdown",
        }
    }

    fn index(self) -> usize {
        match self {
            Outcome::Completed => 0,
            Outcome::Failed => 1,
            Outcome::Expired => 2,
            Outcome::Shed => 3,
            Outcome::Cancelled => 4,
            Outcome::ShutDown => 5,
        }
    }
}

/// Identity labels attached to a span at submission.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SpanLabels {
    /// Submitting client's id.
    pub client: u64,
    /// Name of the backend the job was routed to (updated on failover).
    pub backend: String,
    /// Scheduling priority (higher first, matching the executor's convention).
    pub priority: i64,
    /// Job kind label (e.g. `evaluate` / `probe`).
    pub kind: &'static str,
    /// Index of the execution worker that ran the job, stamped at dispatch
    /// (`None` for jobs that never reached a worker).
    pub worker: Option<u64>,
}

/// An immutable record of a finished span.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FinishedSpan {
    /// Store-unique span id, in start order.
    pub id: u64,
    /// Identity labels (backend reflects any failover).
    pub labels: SpanLabels,
    /// Execution sequence number, if the job was scheduled into a slate.
    pub seq: Option<u64>,
    /// Submission timestamp ([`crate::now_ns`] clock).
    pub submit_ns: u64,
    /// When the job was picked into a slate, if it got that far.
    pub scheduled_ns: Option<u64>,
    /// When the backend started executing it, if it got that far.
    pub exec_ns: Option<u64>,
    /// Terminal timestamp.
    pub end_ns: u64,
    /// Terminal state.
    pub outcome: Outcome,
}

impl FinishedSpan {
    /// Time spent queued: submission until slate pickup (or until the terminal
    /// event, for jobs that died in the queue).
    pub fn queue_ns(&self) -> u64 {
        self.scheduled_ns
            .unwrap_or(self.end_ns)
            .saturating_sub(self.submit_ns)
    }

    /// Backend execution time, if the job reached a backend.
    pub fn exec_time_ns(&self) -> Option<u64> {
        self.exec_ns.map(|e| self.end_ns.saturating_sub(e))
    }

    /// Submit-to-terminal latency.
    pub fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.submit_ns)
    }
}

const UNSET: u64 = u64::MAX;

/// A live span handle.  Held (as `Arc<Span>`) by the executor's job state;
/// cheap to stamp from any thread.  Dropping without [`Span::finish`] leaks an
/// open-span count — deliberately, so tests catch lifecycle holes.
pub struct Span {
    store: Arc<SpanStore>,
    id: u64,
    labels: Mutex<SpanLabels>,
    submit_ns: u64,
    scheduled_ns: AtomicU64,
    exec_ns: AtomicU64,
    seq: AtomicU64,
    finished: AtomicBool,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("id", &self.id)
            .field("finished", &self.finished.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Span {
    /// Store-unique id, in start order.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Stamp slate pickup with the job's execution sequence number.  First call
    /// wins; retries of the same job keep the original stamp.
    pub fn mark_scheduled(&self, seq: u64) {
        let _ = self.scheduled_ns.compare_exchange(
            UNSET,
            now_ns(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        let _ = self
            .seq
            .compare_exchange(UNSET, seq, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Stamp backend-execution start.  First call wins.
    pub fn mark_exec(&self) {
        let _ =
            self.exec_ns
                .compare_exchange(UNSET, now_ns(), Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Re-label the backend (failover moved the job).
    pub fn set_backend(&self, name: &str) {
        self.labels.lock().unwrap().backend = name.to_string();
    }

    /// Label the execution worker that ran (or is running) the job.
    pub fn set_worker(&self, worker: u64) {
        self.labels.lock().unwrap().worker = Some(worker);
    }

    /// Close the span with `outcome`.  Idempotent: only the first call records;
    /// later calls are ignored, preserving exactly-one-terminal-event.
    pub fn finish(&self, outcome: Outcome) {
        if self
            .finished
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let end_ns = now_ns();
        let scheduled = match self.scheduled_ns.load(Ordering::Relaxed) {
            UNSET => None,
            v => Some(v),
        };
        let exec = match self.exec_ns.load(Ordering::Relaxed) {
            UNSET => None,
            v => Some(v),
        };
        let seq = match self.seq.load(Ordering::Relaxed) {
            UNSET => None,
            v => Some(v),
        };
        let record = FinishedSpan {
            id: self.id,
            labels: self.labels.lock().unwrap().clone(),
            seq,
            submit_ns: self.submit_ns,
            scheduled_ns: scheduled,
            exec_ns: exec,
            end_ns,
            outcome,
        };
        self.store.record_finished(record);
    }
}

/// Owner of finished-span storage and the derived latency histograms.
pub struct SpanStore {
    capacity: usize,
    ring: Mutex<VecDeque<FinishedSpan>>,
    next_id: AtomicU64,
    started: AtomicU64,
    finished: AtomicU64,
    dropped: AtomicU64,
    outcomes: [AtomicU64; Outcome::ALL.len()],
    queue_hist: Histogram,
    exec_hist: Histogram,
    e2e_hist: Histogram,
}

impl SpanStore {
    /// A store whose ring keeps the most recent `capacity` finished spans.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(SpanStore {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(0),
            started: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            outcomes: std::array::from_fn(|_| AtomicU64::new(0)),
            queue_hist: Histogram::new(),
            exec_hist: Histogram::new(),
            e2e_hist: Histogram::new(),
        })
    }

    /// Open a span stamped with the current time.
    pub fn start(self: &Arc<Self>, labels: SpanLabels) -> Arc<Span> {
        self.started.fetch_add(1, Ordering::Relaxed);
        Arc::new(Span {
            store: Arc::clone(self),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            labels: Mutex::new(labels),
            submit_ns: now_ns(),
            scheduled_ns: AtomicU64::new(UNSET),
            exec_ns: AtomicU64::new(UNSET),
            seq: AtomicU64::new(UNSET),
            finished: AtomicBool::new(false),
        })
    }

    fn record_finished(&self, span: FinishedSpan) {
        self.outcomes[span.outcome.index()].fetch_add(1, Ordering::Relaxed);
        self.queue_hist.record(span.queue_ns());
        if let Some(exec) = span.exec_time_ns() {
            self.exec_hist.record(exec);
        }
        self.e2e_hist.record(span.total_ns());
        {
            let mut ring = self.ring.lock().unwrap();
            if ring.len() == self.capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(span);
        }
        self.finished.fetch_add(1, Ordering::Relaxed);
    }

    /// Spans started but not yet finished.
    pub fn open_spans(&self) -> u64 {
        self.started.load(Ordering::Relaxed) - self.finished.load(Ordering::Relaxed)
    }

    /// Total spans ever started.
    pub fn started(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }

    /// Total spans finished (whether or not still in the ring).
    pub fn finished(&self) -> u64 {
        self.finished.load(Ordering::Relaxed)
    }

    /// Finished spans evicted from the ring by capacity pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Count of spans that ended in `outcome`.
    pub fn outcome_count(&self, outcome: Outcome) -> u64 {
        self.outcomes[outcome.index()].load(Ordering::Relaxed)
    }

    /// Clone the ring's contents, oldest first.
    pub fn recorded(&self) -> Vec<FinishedSpan> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Queue-latency histogram (submit → slate pickup, or terminal for jobs
    /// that never left the queue).
    pub fn queue_latency(&self) -> HistogramSnapshot {
        self.queue_hist.snapshot()
    }

    /// Backend-execution latency histogram (only jobs that reached a backend).
    pub fn exec_latency(&self) -> HistogramSnapshot {
        self.exec_hist.snapshot()
    }

    /// End-to-end latency histogram (submit → terminal, all jobs).
    pub fn e2e_latency(&self) -> HistogramSnapshot {
        self.e2e_hist.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> SpanLabels {
        SpanLabels {
            client: 7,
            backend: "statevector".into(),
            priority: 0,
            kind: "evaluate",
            worker: None,
        }
    }

    #[test]
    fn full_lifecycle_records_once() {
        let store = SpanStore::new(8);
        let span = store.start(labels());
        span.mark_scheduled(42);
        span.mark_exec();
        span.finish(Outcome::Completed);
        span.finish(Outcome::Failed); // ignored: already terminal
        assert_eq!(store.open_spans(), 0);
        assert_eq!(store.outcome_count(Outcome::Completed), 1);
        assert_eq!(store.outcome_count(Outcome::Failed), 0);
        let spans = store.recorded();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].seq, Some(42));
        assert!(spans[0].scheduled_ns.is_some());
        assert!(spans[0].exec_ns.is_some());
        assert_eq!(store.exec_latency().count, 1);
        assert_eq!(store.e2e_latency().count, 1);
    }

    #[test]
    fn queue_death_has_no_exec_sample() {
        let store = SpanStore::new(8);
        let span = store.start(labels());
        span.finish(Outcome::Shed);
        let spans = store.recorded();
        assert_eq!(spans[0].exec_ns, None);
        assert_eq!(spans[0].seq, None);
        assert_eq!(store.exec_latency().count, 0);
        assert_eq!(store.queue_latency().count, 1);
        assert_eq!(store.outcome_count(Outcome::Shed), 1);
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let store = SpanStore::new(2);
        for _ in 0..5 {
            store.start(labels()).finish(Outcome::Completed);
        }
        assert_eq!(store.recorded().len(), 2);
        assert_eq!(store.dropped(), 3);
        assert_eq!(store.finished(), 5);
        // The survivors are the most recent two.
        let ids: Vec<u64> = store.recorded().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn unfinished_span_shows_as_open() {
        let store = SpanStore::new(8);
        let _span = store.start(labels());
        assert_eq!(store.open_spans(), 1);
    }
}
