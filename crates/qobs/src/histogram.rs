//! Log₂-bucketed latency histograms.
//!
//! Values (nanoseconds) are classified into 64 power-of-two buckets by bit
//! width: bucket 0 holds the value 0, bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`.
//! Recording is a `leading_zeros` plus relaxed atomic adds — no lock, no float,
//! no allocation — so the executor can stamp every job.  Exact `count`, `sum`,
//! `min`, and `max` ride along; quantiles are estimated from bucket upper bounds
//! at snapshot time (error bounded by the 2× bucket width, plenty for p50/p99
//! latency triage).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit width of a `u64`, plus bucket 0.
pub const NUM_BUCKETS: usize = 64;

/// Bucket index for `value`: 0 for 0, otherwise its bit width capped at 63.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `idx`.
pub(crate) fn bucket_upper_bound(idx: usize) -> u64 {
    if idx >= 63 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// A concurrent log₂ histogram of `u64` values.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Copy the current state out.  Concurrent recorders may land between the
    /// field loads; the snapshot is internally consistent enough for reporting
    /// (counts never decrease, quantiles clamp to `[min, max]`).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile estimation and merge.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; see the module docs for the bucket → range mapping.
    pub buckets: [u64; NUM_BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`), or `None` when empty.
    ///
    /// Walks the cumulative bucket counts to the bucket containing the target
    /// rank and returns its upper bound, clamped to the exact `[min, max]`
    /// observed — so `quantile(0.0) ≥ min`, `quantile(1.0) ≤ max`, and the
    /// estimate is never more than one bucket width (2×) above the true value.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target value, 1-based; q = 0 maps to the first value.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Some(bucket_upper_bound(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Add another snapshot's contents into this one.  `sum` wraps on overflow,
    /// matching the relaxed `fetch_add` accumulation in [`Histogram::record`].
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ranges_partition_the_u64_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every bucket's upper bound classifies into that bucket.
        for idx in 0..NUM_BUCKETS {
            assert!(bucket_index(bucket_upper_bound(idx)) <= idx);
        }
    }

    #[test]
    fn exact_stats_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 11_106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10_000);
        assert!(s.quantile(0.0).unwrap() >= 1);
        assert!(s.quantile(1.0).unwrap() <= 10_000);
        let p50 = s.quantile(0.5).unwrap();
        assert!((3..=127).contains(&p50), "p50 estimate {p50} out of range");
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        a.record(5);
        let b = Histogram::new();
        b.record(50_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 50_000);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
    }
}
