//! Renderers for [`ObsSnapshot`]: human-readable table, JSON, Prometheus text.
//!
//! All three are hand-rendered strings (the workspace's vendored `serde` is a
//! no-op stand-in), following the same convention as the repository's
//! `BENCH_*.json` writers: stable key order, no trailing whitespace, so
//! outputs diff cleanly across runs.

use crate::histogram::HistogramSnapshot;
use crate::registry::ObsSnapshot;
use std::fmt::Write as _;

/// Quantiles reported by every renderer.
const QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)];

fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

/// Render the snapshot as an indented, human-readable summary table.
///
/// This is what the example binaries print at end-of-run: span totals,
/// per-outcome tallies, a latency row per stage (queue / exec / end-to-end,
/// microseconds), and every non-zero event counter.
pub fn render_table(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  observability summary ({}):",
        if snap.enabled {
            "tracing on"
        } else {
            "tracing off"
        }
    );
    let _ = writeln!(
        out,
        "    jobs: {} started, {} finished, {} open (ring {}/{}, {} dropped)",
        snap.spans.started,
        snap.spans.finished,
        snap.spans.open,
        snap.spans.finished.min(snap.spans.ring_capacity as u64),
        snap.spans.ring_capacity,
        snap.spans.dropped
    );
    let outcomes: Vec<String> = snap
        .spans
        .outcomes
        .iter()
        .filter(|&&(_, n)| n > 0)
        .map(|&(label, n)| format!("{label} {n}"))
        .collect();
    if !outcomes.is_empty() {
        let _ = writeln!(out, "    outcomes: {}", outcomes.join(", "));
    }
    let stages = [
        ("queue", &snap.queue_latency),
        ("exec", &snap.exec_latency),
        ("e2e", &snap.e2e_latency),
    ];
    if stages.iter().any(|(_, h)| !h.is_empty()) {
        let _ = writeln!(
            out,
            "    latency (µs) {:>10} {:>10} {:>10} {:>10} {:>8}",
            "p50", "p90", "p99", "max", "count"
        );
        for (stage, hist) in stages {
            if hist.is_empty() {
                continue;
            }
            let q = |q: f64| fmt_us(hist.quantile(q).unwrap_or(0));
            let _ = writeln!(
                out,
                "      {stage:<10} {:>10} {:>10} {:>10} {:>10} {:>8}",
                q(0.50),
                q(0.90),
                q(0.99),
                fmt_us(hist.max),
                hist.count
            );
        }
    }
    let mut events: Vec<String> = snap
        .counters
        .iter()
        .filter(|&&(_, n)| n > 0)
        .map(|&(name, n)| format!("{name} {n}"))
        .collect();
    events.extend(
        snap.labeled
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| format!("{name} {n}")),
    );
    let _ = writeln!(
        out,
        "    events: {}",
        if events.is_empty() {
            "(none)".to_string()
        } else {
            events.join(", ")
        }
    );
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn hist_json(hist: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    let mut first = true;
    for (idx, &n) in hist.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            buckets.push_str(", ");
        }
        first = false;
        let _ = write!(buckets, "[{idx}, {n}]");
    }
    buckets.push(']');
    let quantiles: Vec<String> = QUANTILES
        .iter()
        .map(|&(name, q)| format!("\"{name}\": {}", hist.quantile(q).unwrap_or(0)))
        .collect();
    format!(
        "{{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, {}, \"nonzero_buckets\": {}}}",
        hist.count,
        if hist.count == 0 { 0 } else { hist.sum },
        if hist.count == 0 { 0 } else { hist.min },
        hist.max,
        quantiles.join(", "),
        buckets
    )
}

/// Render the snapshot as a single JSON document.
///
/// Schema (stable key order): `enabled`, `spans` (totals + per-outcome map),
/// `latency_ns.{queue,exec,e2e}` (count/sum/min/max/quantiles/non-zero log₂
/// buckets as `[index, count]` pairs), and `events` (counter name → total).
pub fn to_json(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"enabled\": {},", snap.enabled);
    let outcomes: Vec<String> = snap
        .spans
        .outcomes
        .iter()
        .map(|&(label, n)| format!("\"{label}\": {n}"))
        .collect();
    let _ = writeln!(
        out,
        "  \"spans\": {{\"started\": {}, \"finished\": {}, \"open\": {}, \"dropped\": {}, \"ring_capacity\": {}, \"outcomes\": {{{}}}}},",
        snap.spans.started,
        snap.spans.finished,
        snap.spans.open,
        snap.spans.dropped,
        snap.spans.ring_capacity,
        outcomes.join(", ")
    );
    let _ = writeln!(out, "  \"latency_ns\": {{");
    let _ = writeln!(out, "    \"queue\": {},", hist_json(&snap.queue_latency));
    let _ = writeln!(out, "    \"exec\": {},", hist_json(&snap.exec_latency));
    let _ = writeln!(out, "    \"e2e\": {}", hist_json(&snap.e2e_latency));
    let _ = writeln!(out, "  }},");
    let mut events: Vec<String> = snap
        .counters
        .iter()
        .map(|&(name, n)| format!("\"{}\": {n}", json_escape(name)))
        .collect();
    events.extend(
        snap.labeled
            .iter()
            .map(|(name, n)| format!("\"{}\": {n}", json_escape(name))),
    );
    let _ = writeln!(out, "  \"events\": {{{}}}", events.join(", "));
    out.push('}');
    out
}

/// Render the snapshot as Prometheus-style exposition text.
///
/// Metric families: `<prefix>_events_total{event=...}` (one series per
/// counter), `<prefix>_spans_total{state=started|finished|open|dropped}`,
/// `<prefix>_span_outcomes_total{outcome=...}`, and per stage
/// `<prefix>_latency_ns{stage=...,quantile=...}` summaries with `_sum` /
/// `_count` companions.
pub fn to_prometheus(snap: &ObsSnapshot, prefix: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE {prefix}_events_total counter");
    for &(name, n) in &snap.counters {
        let _ = writeln!(out, "{prefix}_events_total{{event=\"{name}\"}} {n}");
    }
    for (name, n) in &snap.labeled {
        let _ = writeln!(out, "{prefix}_events_total{{event=\"{name}\"}} {n}");
    }
    let _ = writeln!(out, "# TYPE {prefix}_spans_total gauge");
    for (state, n) in [
        ("started", snap.spans.started),
        ("finished", snap.spans.finished),
        ("open", snap.spans.open),
        ("dropped", snap.spans.dropped),
    ] {
        let _ = writeln!(out, "{prefix}_spans_total{{state=\"{state}\"}} {n}");
    }
    let _ = writeln!(out, "# TYPE {prefix}_span_outcomes_total counter");
    for &(label, n) in &snap.spans.outcomes {
        let _ = writeln!(
            out,
            "{prefix}_span_outcomes_total{{outcome=\"{label}\"}} {n}"
        );
    }
    let _ = writeln!(out, "# TYPE {prefix}_latency_ns summary");
    for (stage, hist) in [
        ("queue", &snap.queue_latency),
        ("exec", &snap.exec_latency),
        ("e2e", &snap.e2e_latency),
    ] {
        for &(_, q) in &QUANTILES {
            let _ = writeln!(
                out,
                "{prefix}_latency_ns{{stage=\"{stage}\",quantile=\"{q}\"}} {}",
                hist.quantile(q).unwrap_or(0)
            );
        }
        let _ = writeln!(
            out,
            "{prefix}_latency_ns_sum{{stage=\"{stage}\"}} {}",
            if hist.count == 0 { 0 } else { hist.sum }
        );
        let _ = writeln!(
            out,
            "{prefix}_latency_ns_count{{stage=\"{stage}\"}} {}",
            hist.count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::{Outcome, SpanLabels};

    const NAMES: &[&str] = &["rejected", "retries"];

    fn populated() -> ObsSnapshot {
        let reg = Registry::with_capacity(NAMES, true, 16);
        reg.counters().add(0, 4);
        let span = reg
            .start_span(SpanLabels {
                client: 0,
                backend: "sv".into(),
                priority: 5,
                kind: "evaluate",
                worker: None,
            })
            .unwrap();
        span.mark_scheduled(0);
        span.mark_exec();
        span.finish(Outcome::Completed);
        reg.snapshot()
    }

    #[test]
    fn table_mentions_outcomes_and_events() {
        let table = render_table(&populated());
        assert!(table.contains("completed 1"), "{table}");
        assert!(table.contains("rejected 4"), "{table}");
        assert!(table.contains("e2e"), "{table}");
    }

    #[test]
    fn json_is_balanced_and_has_keys() {
        let json = to_json(&populated());
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        for key in [
            "\"enabled\"",
            "\"spans\"",
            "\"latency_ns\"",
            "\"events\"",
            "\"rejected\": 4",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn prometheus_has_every_family() {
        let text = to_prometheus(&populated(), "qexec");
        for family in [
            "qexec_events_total{event=\"rejected\"} 4",
            "qexec_spans_total{state=\"finished\"} 1",
            "qexec_span_outcomes_total{outcome=\"completed\"} 1",
            "qexec_latency_ns{stage=\"e2e\",quantile=\"0.5\"}",
            "qexec_latency_ns_count{stage=\"exec\"} 1",
        ] {
            assert!(text.contains(family), "missing {family} in {text}");
        }
    }
}
