//! The [`Registry`]: one handle bundling counters, spans, and histograms, and
//! the serializable [`ObsSnapshot`] the exporters consume.

use crate::counter::{Counters, LabeledCounters};
use crate::histogram::HistogramSnapshot;
use crate::span::{Outcome, Span, SpanLabels, SpanStore};
use std::sync::Arc;

/// An observability registry for one subsystem instance (e.g. one `Executor`).
///
/// Counters are *always* live — they are cheaper than the lock-held increments
/// they replaced and back public stats APIs.  Span recording (and with it the
/// latency histograms) is gated on the `enabled` flag fixed at construction:
/// when disabled, [`Registry::start_span`] returns `None` and the per-job
/// tracing cost is a single branch on an `Option`.
pub struct Registry {
    enabled: bool,
    counters: Counters,
    labeled: LabeledCounters,
    spans: Arc<SpanStore>,
}

impl Registry {
    /// A registry over the event-name table `names`, with the ring capacity
    /// taken from `QOBS_RING_CAP` (default [`crate::DEFAULT_RING_CAPACITY`]).
    pub fn new(names: &'static [&'static str], enabled: bool) -> Arc<Self> {
        Self::with_capacity(names, enabled, crate::ring_capacity_from_env())
    }

    /// As [`Registry::new`] with an explicit finished-span ring capacity.
    pub fn with_capacity(
        names: &'static [&'static str],
        enabled: bool,
        ring_capacity: usize,
    ) -> Arc<Self> {
        Arc::new(Registry {
            enabled,
            counters: Counters::new(names),
            labeled: LabeledCounters::new(),
            spans: SpanStore::new(ring_capacity),
        })
    }

    /// Whether span/histogram recording is on for this registry.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The (always-live) event counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The (always-live) dynamically labeled counters — events whose label set
    /// is a runtime knob, like the executor's per-worker slate tallies.
    pub fn labeled(&self) -> &LabeledCounters {
        &self.labeled
    }

    /// The span store (empty forever when the registry is disabled).
    pub fn spans(&self) -> &Arc<SpanStore> {
        &self.spans
    }

    /// Open a lifecycle span, or `None` when recording is disabled.
    pub fn start_span(&self, labels: SpanLabels) -> Option<Arc<Span>> {
        if self.enabled {
            Some(self.spans.start(labels))
        } else {
            None
        }
    }

    /// Snapshot everything into an [`ObsSnapshot`] for export.
    pub fn snapshot(&self) -> ObsSnapshot {
        let spans = &self.spans;
        ObsSnapshot {
            enabled: self.enabled,
            counters: self.counters.snapshot(),
            labeled: self.labeled.snapshot(),
            spans: SpanSummary {
                started: spans.started(),
                finished: spans.finished(),
                open: spans.open_spans(),
                dropped: spans.dropped(),
                ring_capacity: spans.capacity(),
                outcomes: Outcome::ALL
                    .iter()
                    .map(|&o| (o.as_str(), spans.outcome_count(o)))
                    .collect(),
            },
            queue_latency: spans.queue_latency(),
            exec_latency: spans.exec_latency(),
            e2e_latency: spans.e2e_latency(),
        }
    }
}

/// Span-store totals inside an [`ObsSnapshot`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SpanSummary {
    /// Spans opened.
    pub started: u64,
    /// Spans closed with a terminal outcome.
    pub finished: u64,
    /// Spans still open (`started - finished`).
    pub open: u64,
    /// Finished spans evicted from the ring.
    pub dropped: u64,
    /// Ring capacity.
    pub ring_capacity: usize,
    /// `(outcome label, count)` in [`Outcome::ALL`] order.
    pub outcomes: Vec<(&'static str, u64)>,
}

impl SpanSummary {
    /// Count for one outcome label, 0 if absent.
    pub fn outcome(&self, label: &str) -> u64 {
        self.outcomes
            .iter()
            .find(|(l, _)| *l == label)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }
}

/// A point-in-time copy of a [`Registry`], ready for the [`crate::export`]
/// renderers (or any other consumer).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ObsSnapshot {
    /// Whether span recording was on.
    pub enabled: bool,
    /// `(event name, total)` for every counter, in registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(label, total)` for every dynamically labeled counter, sorted by label
    /// (e.g. `worker0_slates`).  Rendered alongside `counters` by every
    /// exporter.
    pub labeled: Vec<(String, u64)>,
    /// Span totals and per-outcome tallies.
    pub spans: SpanSummary,
    /// Submit → slate-pickup latency (ns).
    pub queue_latency: HistogramSnapshot,
    /// Backend execution latency (ns), jobs that reached a backend only.
    pub exec_latency: HistogramSnapshot,
    /// Submit → terminal latency (ns), all jobs.
    pub e2e_latency: HistogramSnapshot,
}

impl ObsSnapshot {
    /// Counter total by name — static event counters first, then labeled
    /// counters — 0 if the name is unknown to both.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .or_else(|| {
                self.labeled
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: &[&str] = &["rejected", "shed"];

    fn labels() -> SpanLabels {
        SpanLabels {
            client: 1,
            backend: "sv".into(),
            priority: 0,
            kind: "evaluate",
            worker: None,
        }
    }

    #[test]
    fn disabled_registry_counts_but_never_spans() {
        let reg = Registry::with_capacity(NAMES, false, 16);
        reg.counters().inc(0);
        assert!(reg.start_span(labels()).is_none());
        let snap = reg.snapshot();
        assert!(!snap.enabled);
        assert_eq!(snap.counter("rejected"), 1);
        assert_eq!(snap.spans.started, 0);
        assert!(snap.queue_latency.is_empty());
    }

    #[test]
    fn enabled_registry_snapshots_spans() {
        let reg = Registry::with_capacity(NAMES, true, 16);
        let span = reg.start_span(labels()).unwrap();
        span.mark_scheduled(0);
        span.mark_exec();
        span.finish(Outcome::Completed);
        let snap = reg.snapshot();
        assert_eq!(snap.spans.started, 1);
        assert_eq!(snap.spans.finished, 1);
        assert_eq!(snap.spans.open, 0);
        assert_eq!(snap.spans.outcome("completed"), 1);
        assert_eq!(snap.e2e_latency.count, 1);
    }
}
