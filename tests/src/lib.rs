//! Integration-test-only crate; tests live in the tests/ subdirectory.
