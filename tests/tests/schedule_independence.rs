//! Schedule-independence property suite: the `qexec` contract that **results are
//! bit-identical under any schedule**.
//!
//! Every job pins its own counter-based `qrng` stream, so nothing about the realized
//! execution — worker count, slate partitioning, submission interleaving, retries,
//! failovers — may change any result or the total number of RNG draws.  The properties
//! here randomize the submission order and sweep `workers ∈ {1, 2, 4}` over a
//! four-backend executor, for exact, sampled, and noisy-trajectory backends, and
//! demand bit-identical per-job results plus an identical `qrng::total_draws` delta
//! against the single-worker in-order baseline.  A final scenario injects transient
//! faults (rescued by retries) and a permanently dead backend (rescued by failover)
//! and demands the survivors still match the undisturbed baseline bit-for-bit.

use proptest::prelude::*;
use qcircuit::{Circuit, Entanglement, HardwareEfficientAnsatz};
use qexec::fault::{FaultKind, FaultPlan, FaultyBackend};
use qexec::{EvalJob, Executor, StreamId, SubmitOptions};
use qnoise::PauliNoiseModel;
use qop::PauliOp;
use rand::Rng;
use std::sync::{Arc, Mutex};
use vqa::{Backend, InitialState, NoisyStatevectorBackend, SampledBackend, StatevectorBackend};

/// Every test in this binary serializes on this lock: the suite compares deltas of the
/// process-global `qrng::total_draws` counter, which concurrent sibling tests running
/// their own executors would pollute.
static SERIAL: Mutex<()> = Mutex::new(());

const BACKENDS: usize = 4;
const JOBS: usize = 12;

fn demo_circuit(num_qubits: usize) -> Arc<Circuit> {
    Arc::new(HardwareEfficientAnsatz::new(num_qubits, 2, Entanglement::Circular).build())
}

fn demo_ops(num_qubits: usize) -> (Arc<PauliOp>, Arc<PauliOp>) {
    let mut charged = String::from("ZZ");
    let mut free = String::from("XI");
    while charged.len() < num_qubits {
        charged.push('I');
        free.push(if free.len() % 2 == 0 { 'Z' } else { 'I' });
    }
    (
        Arc::new(PauliOp::from_labels(
            num_qubits,
            &[(charged.as_str(), -1.0), (free.as_str(), 0.3)],
        )),
        Arc::new(PauliOp::from_labels(num_qubits, &[(free.as_str(), 0.7)])),
    )
}

/// A boxed factory producing one identically configured backend per call.
type BackendFactory = Box<dyn Fn() -> Box<dyn Backend + Send>>;

/// The three backend families under test, as boxed factories so one scenario runner
/// covers them all.  Index `i` is the registration slot (all slots get identically
/// configured drivers, so failover between them preserves results).
fn backend_factories() -> Vec<(&'static str, BackendFactory)> {
    let model = PauliNoiseModel::ibm_like("sched-indep", 0.02, 0.05, 0.01, 0.01);
    vec![
        (
            "exact",
            Box::new(|| Box::new(StatevectorBackend::with_shots(64)) as Box<dyn Backend + Send>),
        ),
        (
            "sampled",
            Box::new(|| Box::new(SampledBackend::new(256, 42)) as Box<dyn Backend + Send>),
        ),
        (
            "noisy-trajectory",
            Box::new(move || {
                Box::new(
                    NoisyStatevectorBackend::new(model.clone(), 50, 3)
                        .with_trajectories(5)
                        .with_shot_sampling(),
                ) as Box<dyn Backend + Send>
            }),
        ),
    ]
}

/// Job `i` of the scenario: parameters derived from `i`, pinned to its own named
/// stream (so its identity survives any submission order), targeted at backend
/// `i % BACKENDS`.
fn scenario_job(
    circuit: &Arc<Circuit>,
    charged: &Arc<PauliOp>,
    free: &Arc<PauliOp>,
    i: usize,
) -> EvalJob {
    let params: Vec<f64> = (0..circuit.num_parameters())
        .map(|p| 0.05 * p as f64 + 0.017 * i as f64)
        .collect();
    EvalJob::new(
        Arc::clone(circuit),
        params,
        InitialState::Basis(0),
        Arc::clone(charged),
    )
    .with_free_ops(vec![Arc::clone(free)])
    .with_rng_stream(StreamId::named(&format!("sched-indep-job{i}")))
}

/// One job's result, reduced to comparable bits.
type Bits = (u64, Vec<u64>, u64);

/// Runs the standard scenario — `JOBS` stream-pinned jobs spread round-robin over
/// `BACKENDS` identically configured backends — submitting in `order`, on an executor
/// with `workers` execution threads.  Returns per-job result bits (indexed by job id,
/// not submission position) and the run's `qrng::total_draws` delta.
fn run_scenario(
    make: &dyn Fn() -> Box<dyn Backend + Send>,
    workers: usize,
    order: &[usize],
) -> (Vec<Bits>, u64) {
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    let mut builder = Executor::builder().workers(workers).paused();
    for b in 0..BACKENDS {
        builder = builder.register_boxed(format!("b{b}"), make());
    }
    let executor = builder.start();
    let client = executor.client();
    let draws_before = qrng::total_draws();
    let mut handles: Vec<Option<qexec::JobHandle>> = (0..JOBS).map(|_| None).collect();
    for &i in order {
        let job = scenario_job(&circuit, &charged, &free, i);
        let opts = SubmitOptions::new().backend(format!("b{}", i % BACKENDS));
        handles[i] = Some(client.submit_with(job, &opts).expect("well-formed job"));
    }
    executor.resume();
    let results: Vec<Bits> = handles
        .into_iter()
        .map(|h| {
            let r = h
                .expect("every job submitted")
                .wait()
                .expect("job executes");
            (
                r.charged.to_bits(),
                r.free.iter().map(|v| v.to_bits()).collect(),
                r.shots,
            )
        })
        .collect();
    drop(executor);
    (results, qrng::total_draws() - draws_before)
}

/// A deterministic Fisher–Yates shuffle of `0..JOBS` keyed by `seed` (the property's
/// randomness source, kept reproducible through `qrng` itself).
fn shuffled_order(seed: u64) -> Vec<usize> {
    let mut rng = qrng::CounterRng::new(qrng::mix(seed, 0x5348_5546));
    let mut order: Vec<usize> = (0..JOBS).collect();
    for i in (1..order.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Worker counts, slate partitionings, and submission interleavings never change
    /// any result or the total number of RNG draws, for every backend family.
    #[test]
    fn results_and_draw_counts_are_schedule_independent(shuffle_seed in 0u64..u64::MAX) {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let in_order: Vec<usize> = (0..JOBS).collect();
        let shuffled = shuffled_order(shuffle_seed);
        for (family, make) in backend_factories() {
            let (baseline, baseline_draws) = run_scenario(make.as_ref(), 1, &in_order);
            for workers in [1usize, 2, 4] {
                for order in [&in_order, &shuffled] {
                    let (results, draws) = run_scenario(make.as_ref(), workers, order);
                    prop_assert_eq!(
                        &results,
                        &baseline,
                        "{} results diverged at workers={} order={:?}",
                        family,
                        workers,
                        order
                    );
                    prop_assert_eq!(
                        draws,
                        baseline_draws,
                        "{} draw count diverged at workers={}",
                        family,
                        workers
                    );
                }
            }
        }
    }
}

/// Retry and failover perturbations leave every surviving result bit-identical to the
/// undisturbed single-worker baseline: the re-executions reuse each job's pinned
/// stream, and the standby backends are configured identically — so supervision
/// machinery is invisible in the results.
#[test]
fn retries_and_failovers_do_not_disturb_results() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Injected faults unwind through catch_unwind by design; keep the log quiet.
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));

    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    let in_order: Vec<usize> = (0..JOBS).collect();
    let make_clean = || Box::new(SampledBackend::new(256, 42)) as Box<dyn Backend + Send>;
    let (baseline, _) = run_scenario(&make_clean, 1, &in_order);

    for workers in [1usize, 2, 4] {
        let mut builder = Executor::builder().workers(workers).paused();
        for b in 0..BACKENDS {
            // b0's first batch faults transiently (rescued by the retry budget); b3 is
            // permanently dead, including its canary probes (rescued by failover).
            let plan = match b {
                0 => FaultPlan::new(1).with_fault_at(0, Some(FaultKind::Transient)),
                3 => FaultPlan::new(2).with_panic_rate(1.0),
                _ => FaultPlan::new(3),
            };
            builder = builder.register_boxed(
                format!("b{b}"),
                Box::new(FaultyBackend::new(SampledBackend::new(256, 42), plan)),
            );
        }
        let executor = builder.start();
        let client = executor.client();
        let mut handles = Vec::new();
        for i in 0..JOBS {
            let job = scenario_job(&circuit, &charged, &free, i);
            let opts = SubmitOptions::new()
                .backend(format!("b{}", i % BACKENDS))
                .retries(2)
                .failover(true);
            handles.push(client.submit_with(job, &opts).expect("well-formed job"));
        }
        executor.resume();
        for (i, handle) in handles.iter().enumerate() {
            let r = handle.wait().expect("retries/failover rescue every job");
            let bits: Bits = (
                r.charged.to_bits(),
                r.free.iter().map(|v| v.to_bits()).collect(),
                r.shots,
            );
            assert_eq!(
                bits, baseline[i],
                "job {i} diverged from the undisturbed baseline at workers={workers}"
            );
        }
        let stats = executor.stats();
        assert!(stats.retries > 0, "the transient fault should have retried");
        assert!(
            stats.failovers > 0,
            "the dead backend should have failed over"
        );
        drop(executor);
    }
}
