//! Cross-crate integration tests: full TreeVQA runs against the conventional baseline on
//! small applications, exercising the whole stack (workload generators → ansatz →
//! simulator → optimizer → controller → metrics).

use qchem::{MoleculeSpec, SpinChainFamily};
use qcircuit::{Entanglement, HardwareEfficientAnsatz};
use qexec::{run_baseline, Executor};
use qopt::OptimizerSpec;
use qsim::PauliPropagatorConfig;
use treevqa::{SplitPolicy, TreeVqa, TreeVqaConfig};
use vqa::{
    metrics, Backend, InitialState, PauliPropagationBackend, StatevectorBackend, VqaApplication,
    VqaRunConfig, VqaTask,
};

fn tfim_application(num_tasks: usize) -> VqaApplication {
    let family = SpinChainFamily {
        num_sites: 4,
        ..SpinChainFamily::tfim_benchmark()
    };
    let tasks: Vec<VqaTask> = family
        .tasks(num_tasks)
        .into_iter()
        .map(|(h, ham)| VqaTask::with_computed_reference(format!("h={h:.2}"), h, ham))
        .collect();
    let ansatz = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular).build();
    VqaApplication::new("tfim-it", tasks, ansatz, InitialState::Basis(0))
}

#[test]
fn treevqa_matches_or_beats_baseline_fidelity_under_equal_budget() {
    let app = tfim_application(4);
    let iterations = 150;

    let baseline_config = VqaRunConfig {
        max_iterations: iterations,
        optimizer: OptimizerSpec::default_spsa(),
        seed: 3,
        record_every: 5,
    };
    let zeros = vec![0.0; app.num_parameters()];
    let baseline = run_baseline(&app, &zeros, &baseline_config, &mut |_| {
        Box::new(StatevectorBackend::new()) as Box<dyn Backend + Send>
    })
    .expect("well-formed application");

    let tree_config = TreeVqaConfig {
        max_cluster_iterations: iterations,
        record_every: 5,
        seed: 3,
        ..Default::default()
    };
    let tree = TreeVqa::new(app.clone(), tree_config);
    let executor = Executor::single(StatevectorBackend::new());
    let result = tree.run(&executor).expect("well-formed application");

    // Under the baseline's own total budget, TreeVQA's minimum fidelity must be at least
    // comparable (the paper's Figure 7 behaviour).  Allow a small tolerance for noise.
    let budget = baseline.total_shots;
    let baseline_fid =
        metrics::baseline_min_fidelity_at_budget(&baseline.per_task, &app.tasks, budget).unwrap();
    let tree_fid = result.min_fidelity_at_budget(budget).unwrap();
    assert!(
        tree_fid >= baseline_fid - 0.05,
        "TreeVQA fidelity {tree_fid} should not be much worse than baseline {baseline_fid}"
    );

    // Final accuracy must be sensible and every task must be answered.
    assert_eq!(result.per_task.len(), 4);
    assert!(result.min_fidelity().unwrap() > 0.6);
    assert!(result.total_shots > 0);
    // The execution tree is well formed: at least the root, every leaf non-retired.
    assert!(result.tree.num_nodes() >= 1);
    assert!(result.tree.critical_depth() >= 1);
}

#[test]
fn treevqa_saves_shots_at_a_common_fidelity_threshold_for_similar_tasks() {
    // Very similar tasks (narrow sweep) are where shared execution pays off most.
    let family = SpinChainFamily {
        num_sites: 4,
        param_min: 0.55,
        param_max: 0.65,
        ..SpinChainFamily::tfim_benchmark()
    };
    let tasks: Vec<VqaTask> = family
        .tasks(4)
        .into_iter()
        .map(|(h, ham)| VqaTask::with_computed_reference(format!("h={h:.2}"), h, ham))
        .collect();
    let ansatz = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular).build();
    let app = VqaApplication::new("tfim-similar", tasks, ansatz, InitialState::Basis(0));

    // The shots-at-equal-fidelity comparison rides on two stochastic SPSA trajectories, so
    // a single optimizer seed is a one-sample test of a distributional claim: any
    // individual stream can have the baseline get lucky or TreeVQA get unlucky (and some
    // streams fail to converge within the iteration budget at all).  Run several seeds and
    // assert the *median* shot ratio, which is what the paper's savings claim is about.
    //
    // Seed policy (re-examined after the PR 4 split-lane storage change): seeds 1..=10
    // are fixed, and any seed whose SPSA streams fail to reach even fidelity 0.7 within
    // 200 iterations simply contributes no ratio — the test only requires that at least
    // 3 of the 10 converge and that the median ratio over the converged seeds stays
    // ≤ 1.2.  Which specific seeds converge is NOT part of the contract: the kernels'
    // summation order (and hence the 1-ulp tail of every expectation value) legitimately
    // changes under refactors like the SoA layout or a different reduction chunking, and
    // SPSA amplifies ulp-level input differences into divergent trajectories.  Under the
    // split-lane kernels 7 of 10 seeds converge (median ratio ≈ 0.36) — the same census
    // as the interleaved layout, whose 3 non-converging seeds ROADMAP flagged for
    // re-examination; if a future change trips the `ratios.len() >= 3` floor, widen the
    // iteration budget rather than cherry-picking seeds.
    let iterations = 200;
    let zeros = vec![0.0; app.num_parameters()];
    let mut ratios: Vec<f64> = Vec::new();
    for seed in 1..=10u64 {
        let baseline = run_baseline(
            &app,
            &zeros,
            &VqaRunConfig {
                max_iterations: iterations,
                optimizer: OptimizerSpec::default_spsa(),
                seed,
                record_every: 2,
            },
            &mut |_| Box::new(StatevectorBackend::new()) as Box<dyn Backend + Send>,
        )
        .expect("well-formed application");
        let tree = TreeVqa::new(
            app.clone(),
            TreeVqaConfig {
                max_cluster_iterations: iterations,
                record_every: 2,
                seed,
                ..Default::default()
            },
        );
        let executor = Executor::single(StatevectorBackend::new());
        let result = tree.run(&executor).expect("well-formed application");

        // Compare shots at the highest threshold both methods reach on this stream.
        for threshold in [0.95, 0.9, 0.85, 0.8, 0.75, 0.7] {
            let b =
                metrics::baseline_shots_for_threshold(&baseline.per_task, &app.tasks, threshold);
            let t = result.shots_to_reach_min_fidelity(threshold);
            if let (Some(b), Some(t)) = (b, t) {
                ratios.push(t as f64 / b as f64);
                break;
            }
        }
    }
    // Surfaced under --nocapture so layout/optimizer refactors can re-check the seed
    // census against the policy note above without instrumenting the test.
    eprintln!(
        "shots-at-equal-fidelity: {} of 10 seeds converged, ratios {ratios:?}",
        ratios.len()
    );
    assert!(
        ratios.len() >= 3,
        "too few seeds reached a common fidelity threshold ({} of 10)",
        ratios.len()
    );
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = ratios[ratios.len() / 2];
    assert!(
        median <= 1.2,
        "TreeVQA should not need many more shots than the baseline at equal fidelity \
         (median ratio {median:.2} over {} seeds: {ratios:?})",
        ratios.len()
    );
}

#[test]
fn forced_single_split_produces_exactly_two_leaves() {
    let app = tfim_application(4);
    let config = TreeVqaConfig {
        max_cluster_iterations: 60,
        split_policy: SplitPolicy::ForcedSingle { at_fraction: 0.5 },
        record_every: 10,
        ..Default::default()
    };
    let tree = TreeVqa::new(app, config);
    let executor = Executor::single(StatevectorBackend::new());
    let result = tree.run(&executor).expect("well-formed application");
    assert_eq!(result.tree.num_splits(), 1);
    assert_eq!(result.tree.leaves().len(), 2);
    assert_eq!(result.tree.critical_depth(), 2);
}

#[test]
fn never_split_policy_keeps_a_single_cluster() {
    let app = tfim_application(3);
    let config = TreeVqaConfig {
        max_cluster_iterations: 40,
        split_policy: SplitPolicy::Never,
        record_every: 10,
        ..Default::default()
    };
    let tree = TreeVqa::new(app, config);
    let executor = Executor::single(StatevectorBackend::new());
    let result = tree.run(&executor).expect("well-formed application");
    assert_eq!(result.tree.num_nodes(), 1);
    assert_eq!(result.tree.num_splits(), 0);
    assert_eq!(result.tree.critical_depth(), 1);
}

#[test]
fn shot_budget_terminates_the_run_early() {
    let app = tfim_application(3);
    let per_eval = 4096 * app.tasks[0].hamiltonian.num_terms() as u64;
    let config = TreeVqaConfig {
        shot_budget: 20 * per_eval,
        max_cluster_iterations: 10_000,
        record_every: 5,
        ..Default::default()
    };
    let tree = TreeVqa::new(app, config);
    let executor = Executor::single(StatevectorBackend::new());
    let result = tree.run(&executor).expect("well-formed application");
    // The run must stop shortly after exceeding the budget (within one round's worth of
    // evaluations), not run to the enormous iteration cap.
    assert!(result.total_shots >= 20 * per_eval);
    assert!(result.total_shots < 60 * per_eval);
}

#[test]
fn statevector_and_pauli_propagation_backends_agree_on_small_systems() {
    let molecule = MoleculeSpec::h2();
    let tasks: Vec<VqaTask> = molecule
        .tasks(3)
        .into_iter()
        .map(|(b, h)| VqaTask::new(format!("r={b:.3}"), b, h))
        .collect();
    let ansatz = HardwareEfficientAnsatz::new(4, 1, Entanglement::Linear).build();
    let app = VqaApplication::new(
        "h2-backend-check",
        tasks,
        ansatz,
        InitialState::Basis(molecule.hartree_fock_state()),
    );
    let params: Vec<f64> = (0..app.num_parameters()).map(|i| 0.11 * i as f64).collect();

    let mut exact = StatevectorBackend::new();
    let mut prop = PauliPropagationBackend::new(
        PauliPropagatorConfig {
            max_weight: 4,
            coefficient_threshold: 1e-12,
            max_terms: 1_000_000,
        },
        qsim::DEFAULT_SHOTS_PER_PAULI,
    );
    for task in &app.tasks {
        let a = exact.probe(&app.ansatz, &params, &app.initial_state, &task.hamiltonian);
        let b = prop.probe(&app.ansatz, &params, &app.initial_state, &task.hamiltonian);
        assert!((a - b).abs() < 1e-7, "{a} vs {b} for {}", task.label);
    }
}

#[test]
fn post_processing_never_worsens_a_task_relative_to_its_own_cluster() {
    let app = tfim_application(4);
    let config = TreeVqaConfig {
        max_cluster_iterations: 80,
        record_every: 5,
        ..Default::default()
    };
    let tree = TreeVqa::new(app.clone(), config);
    let executor = Executor::single(StatevectorBackend::new());
    let result = tree.run(&executor).expect("well-formed application");
    // Post-processed energies are the best over all final states and the recorded
    // trajectory, so they can never exceed the last recorded per-task best.
    let last = result.history.last().unwrap();
    for (outcome, &recorded) in result.per_task.iter().zip(&last.per_task_best_energy) {
        assert!(outcome.energy <= recorded + 1e-9);
    }
}
