//! Executor determinism suite: the `qexec` service's schedule-independence contract,
//! fairness, priority, cancellation, and structured-error behaviour.
//!
//! The hard contract under test: **executor results are bit-identical under any
//! schedule** — every job's stochastic draws come from its own counter-based stream
//! pinned at admission ([`qexec::JobHandle::rng_stream`]), so re-evaluating any job
//! with its stream on a fresh identically-configured backend reproduces its result
//! exactly, in any order, for exact, sampled, and trajectory-noise backends.  CI runs
//! this suite under `RAYON_NUM_THREADS ∈ {1, 2, 4}` × `QEXEC_WORKERS ∈ {1, 2, 4}`;
//! `force_parallel_workers` below defaults a plain local run to 4 rayon workers so the
//! across-state parallel batch paths are exercised even on a single-core box.  (The
//! dedicated schedule-independence property suite lives in
//! `tests/tests/schedule_independence.rs`.)

use qcircuit::{Circuit, Entanglement, HardwareEfficientAnsatz};
use qexec::{wait_all, EvalJob, ExecError, Executor, JobHandle, StreamId, SubmitOptions};
use qnoise::PauliNoiseModel;
use qop::PauliOp;
use std::sync::Arc;
use treevqa::{TreeVqa, TreeVqaConfig};
use vqa::{
    Backend, EvalRequest, InitialState, NoisyStatevectorBackend, SampledBackend,
    StatevectorBackend, VqaApplication, VqaTask,
};

/// Forces multiple workers even on single-core CI machines (the vendored rayon honors
/// this like the real global-pool configuration).
fn force_parallel_workers() {
    let threads = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .ok();
}

fn demo_circuit(num_qubits: usize) -> Arc<Circuit> {
    Arc::new(HardwareEfficientAnsatz::new(num_qubits, 2, Entanglement::Circular).build())
}

fn demo_ops(num_qubits: usize) -> (Arc<PauliOp>, Arc<PauliOp>) {
    let mut charged = String::from("ZZ");
    let mut free = String::from("XI");
    while charged.len() < num_qubits {
        charged.push('I');
        free.push(if free.len() % 2 == 0 { 'Z' } else { 'I' });
    }
    (
        Arc::new(PauliOp::from_labels(
            num_qubits,
            &[(charged.as_str(), -1.0), (free.as_str(), 0.3)],
        )),
        Arc::new(PauliOp::from_labels(num_qubits, &[(free.as_str(), 0.7)])),
    )
}

/// Submits `jobs_per_client` jobs from each of `num_clients` clients (round-robin
/// candidate parameters) against a paused executor, resumes, and returns the jobs in
/// the order the scheduler executed them (by sequence number) together with their
/// results.
fn run_clients(
    executor: &Executor,
    num_clients: usize,
    jobs_per_client: usize,
    circuit: &Arc<Circuit>,
    charged: &Arc<PauliOp>,
    free: &Arc<PauliOp>,
) -> Vec<(EvalJob, qexec::EvalResult, u64, StreamId)> {
    executor.pause();
    let clients: Vec<_> = (0..num_clients).map(|_| executor.client()).collect();
    let mut submitted: Vec<(EvalJob, JobHandle)> = Vec::new();
    for (c, client) in clients.iter().enumerate() {
        for j in 0..jobs_per_client {
            let params: Vec<f64> = (0..circuit.num_parameters())
                .map(|i| 0.05 * i as f64 + 0.11 * c as f64 + 0.013 * j as f64)
                .collect();
            let job = EvalJob::new(
                Arc::clone(circuit),
                params,
                InitialState::Basis(0),
                Arc::clone(charged),
            )
            .with_free_ops(vec![Arc::clone(free)]);
            let handle = client.submit(job.clone()).expect("well-formed job");
            submitted.push((job, handle));
        }
    }
    executor.resume();
    let mut executed: Vec<(EvalJob, qexec::EvalResult, u64, StreamId)> = submitted
        .into_iter()
        .map(|(job, handle)| {
            let result = handle.wait().expect("job executes");
            let seq = handle.sequence().expect("executed jobs have a sequence");
            (job, result, seq, handle.rng_stream())
        })
        .collect();
    executed.sort_by_key(|(_, _, seq, _)| *seq);
    // Sequence numbers must be exactly 0..n in some order (no gaps, no duplicates).
    for (i, (_, _, seq, _)) in executed.iter().enumerate() {
        assert_eq!(*seq, i as u64, "sequence numbers must be gapless");
    }
    executed
}

/// Replays every executed job one at a time through `backend`, keyed by the stream its
/// handle reported — in **reverse** sequence order, to prove the replay is a per-job
/// lookup rather than a ritual re-enactment of the schedule — and demands bit-identical
/// charged/free values and equal shot charges.
fn assert_stream_replay_bit_identical(
    executed: &[(EvalJob, qexec::EvalResult, u64, StreamId)],
    backend: &mut dyn Backend,
) {
    for (job, result, seq, stream) in executed.iter().rev() {
        let free_refs: Vec<&PauliOp> = job.free_ops.iter().map(|op| op.as_ref()).collect();
        let before = backend.shots_used();
        let request = EvalRequest {
            circuit: &job.circuit,
            params: &job.params,
            initial: &job.initial,
            charged_op: &job.charged_op,
            free_ops: &free_refs,
            stream: Some(*stream),
        };
        let mut replayed = backend.evaluate_batch(std::slice::from_ref(&request));
        let replayed = replayed.remove(0);
        assert_eq!(
            result.charged.to_bits(),
            replayed.charged.to_bits(),
            "charged value diverged from the stream-keyed replay at sequence {seq}"
        );
        for (a, b) in result.free.iter().zip(&replayed.free) {
            assert_eq!(a.to_bits(), b.to_bits(), "free value diverged at {seq}");
        }
        assert_eq!(result.shots, backend.shots_used() - before);
    }
}

#[test]
fn exact_backend_matches_stream_replay() {
    force_parallel_workers();
    let circuit = demo_circuit(4);
    let (charged, free) = demo_ops(4);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::with_shots(64))
        .start();
    let executed = run_clients(&executor, 3, 4, &circuit, &charged, &free);
    assert_stream_replay_bit_identical(&executed, &mut StatevectorBackend::with_shots(64));
}

#[test]
fn sampled_backend_results_are_stream_keyed() {
    force_parallel_workers();
    let circuit = demo_circuit(4);
    let (charged, free) = demo_ops(4);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, SampledBackend::new(256, 42))
        .start();
    let executed = run_clients(&executor, 4, 3, &circuit, &charged, &free);
    assert_stream_replay_bit_identical(&executed, &mut SampledBackend::new(256, 42));
}

#[test]
fn noisy_trajectory_backend_matches_stream_replay() {
    force_parallel_workers();
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    let model = PauliNoiseModel::ibm_like("exec-test", 0.02, 0.05, 0.01, 0.01);
    let make = || {
        NoisyStatevectorBackend::new(model.clone(), 50, 4)
            .with_trajectories(5)
            .with_shot_sampling()
    };
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, make())
        .start();
    let executed = run_clients(&executor, 3, 3, &circuit, &charged, &free);
    assert_stream_replay_bit_identical(&executed, &mut make());
}

#[test]
fn large_batches_cross_the_parallel_threshold_and_stay_replayable() {
    force_parallel_workers();
    // 17 candidates × 2^11 amplitudes crosses the default QSIM_PAR_THRESHOLD of 2^14,
    // so the across-state parallel pool engages under multi-worker runs.
    let circuit = demo_circuit(11);
    let (charged, free) = demo_ops(11);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::with_shots(8))
        .start();
    let executed = run_clients(&executor, 1, 17, &circuit, &charged, &free);
    assert_stream_replay_bit_identical(&executed, &mut StatevectorBackend::with_shots(8));
}

#[test]
fn fair_scheduling_interleaves_clients_round_robin() {
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::new())
        .paused()
        .start();
    let num_clients = 3;
    let per_client = 3;
    let clients: Vec<_> = (0..num_clients).map(|_| executor.client()).collect();
    let mut handles: Vec<Vec<JobHandle>> = (0..num_clients).map(|_| Vec::new()).collect();
    // Client 0 submits all its jobs first, then client 1, then client 2 — yet the
    // scheduler must serve them round-robin, not submission-major.
    for (c, client) in clients.iter().enumerate() {
        for _ in 0..per_client {
            let job = EvalJob::new(
                Arc::clone(&circuit),
                vec![0.1; circuit.num_parameters()],
                InitialState::Basis(0),
                Arc::clone(&charged),
            )
            .with_free_ops(vec![Arc::clone(&free)]);
            handles[c].push(client.submit(job).unwrap());
        }
    }
    executor.resume();
    for hs in &handles {
        wait_all(hs).unwrap();
    }
    for (c, hs) in handles.iter().enumerate() {
        for (j, handle) in hs.iter().enumerate() {
            assert_eq!(
                handle.sequence(),
                Some((j * num_clients + c) as u64),
                "client {c} job {j} must execute in round-robin position"
            );
        }
    }
}

#[test]
fn priority_dominates_fairness_and_submission_order() {
    let circuit = demo_circuit(3);
    let (charged, _) = demo_ops(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::new())
        .paused()
        .start();
    let a = executor.client();
    let b = executor.client();
    let job = EvalJob::new(
        Arc::clone(&circuit),
        vec![0.2; circuit.num_parameters()],
        InitialState::Basis(0),
        Arc::clone(&charged),
    );
    let a_low = a.submit(job.clone()).unwrap();
    let b_high = b
        .submit_with(
            job.clone(),
            &SubmitOptions {
                priority: 10,
                ..SubmitOptions::default()
            },
        )
        .unwrap();
    let a_high = a
        .submit_with(
            job,
            &SubmitOptions {
                priority: 10,
                ..SubmitOptions::default()
            },
        )
        .unwrap();
    executor.resume();
    executor.wait_idle();
    // Both priority-10 jobs beat the earlier-submitted priority-0 job; among the
    // priority-10 jobs, round-robin starts at client 0 (= a).
    assert_eq!(a_high.sequence(), Some(0));
    assert_eq!(b_high.sequence(), Some(1));
    assert_eq!(a_low.sequence(), Some(2));
}

#[test]
fn cancellation_removes_queued_jobs_and_preserves_the_replay_of_the_rest() {
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, SampledBackend::new(128, 9))
        .paused()
        .start();
    let client = executor.client();
    let make_job = |x: f64| {
        EvalJob::new(
            Arc::clone(&circuit),
            vec![x; circuit.num_parameters()],
            InitialState::Basis(0),
            Arc::clone(&charged),
        )
        .with_free_ops(vec![Arc::clone(&free)])
    };
    let first = client.submit(make_job(0.1)).unwrap();
    let cancelled = client.submit(make_job(0.2)).unwrap();
    let third = client.submit(make_job(0.3)).unwrap();
    assert!(cancelled.cancel());
    assert!(!cancelled.cancel(), "double-cancel reports false");
    executor.resume();
    let r1 = first.wait().unwrap();
    let r3 = third.wait().unwrap();
    assert_eq!(cancelled.wait().unwrap_err(), ExecError::Cancelled);
    assert_eq!(cancelled.sequence(), None);
    // Cancellation cannot disturb the survivors: each replays bit-identically from its
    // own stream on a fresh backend.
    let mut replay = SampledBackend::new(128, 9);
    for (params, result, stream) in [
        (0.1, &r1, first.rng_stream()),
        (0.3, &r3, third.rng_stream()),
    ] {
        let all_params = vec![params; circuit.num_parameters()];
        let free_refs = [free.as_ref()];
        let request = EvalRequest {
            circuit: &circuit,
            params: &all_params,
            initial: &InitialState::Basis(0),
            charged_op: &charged,
            free_ops: &free_refs,
            stream: Some(stream),
        };
        let replayed = replay
            .evaluate_batch(std::slice::from_ref(&request))
            .remove(0);
        assert_eq!(result.charged.to_bits(), replayed.charged.to_bits());
    }
}

#[test]
fn structured_errors_surface_instead_of_panics() {
    let circuit = demo_circuit(3);
    let (charged, _) = demo_ops(3);
    let executor = Executor::single(StatevectorBackend::new());
    let client = executor.client();

    let err = client
        .submit(EvalJob::new(
            Arc::clone(&circuit),
            vec![0.0; 2],
            InitialState::Basis(0),
            Arc::clone(&charged),
        ))
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::ParameterCountMismatch {
            expected: circuit.num_parameters(),
            got: 2
        }
    );

    let err = client
        .submit(EvalJob::new(
            Arc::clone(&circuit),
            vec![0.0; circuit.num_parameters()],
            InitialState::Basis(123),
            Arc::clone(&charged),
        ))
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::BasisStateOutOfRange {
            basis: 123,
            num_qubits: 3
        }
    );

    let err = client
        .submit(EvalJob::new(
            Arc::new(Circuit::new(3)),
            vec![],
            InitialState::Basis(0),
            charged,
        ))
        .unwrap_err();
    assert_eq!(err, ExecError::EmptyCircuit);
}

#[test]
fn treevqa_runs_are_deterministic_across_executors() {
    force_parallel_workers();
    let tasks: Vec<VqaTask> = [0.45, 0.5, 0.55]
        .iter()
        .map(|&h| {
            VqaTask::with_computed_reference(
                format!("h={h}"),
                h,
                qchem::transverse_field_ising(3, 1.0, h),
            )
        })
        .collect();
    let ansatz = HardwareEfficientAnsatz::new(3, 1, Entanglement::Circular).build();
    let app = VqaApplication::new("exec-det", tasks, ansatz, InitialState::Basis(0));
    let config = TreeVqaConfig {
        max_cluster_iterations: 30,
        record_every: 5,
        seed: 3,
        ..Default::default()
    };
    let run = |seed: u64| {
        let tree = TreeVqa::new(
            app.clone(),
            TreeVqaConfig {
                seed,
                ..config.clone()
            },
        );
        let executor = Executor::single(SampledBackend::new(128, 7));
        tree.run(&executor).expect("well-formed application")
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a.total_shots, b.total_shots);
    for (x, y) in a.per_task.iter().zip(&b.per_task) {
        assert_eq!(
            x.energy.to_bits(),
            y.energy.to_bits(),
            "controller runs over the execution service must be bit-reproducible"
        );
    }
}

#[test]
fn runner_reruns_bit_identically_on_fresh_executors() {
    force_parallel_workers();
    let ham = qchem::transverse_field_ising(3, 1.0, 0.5);
    let task = VqaTask::new("t", 0.5, ham.clone());
    let ansatz = HardwareEfficientAnsatz::new(3, 1, Entanglement::Linear).build();
    let config = vqa::VqaRunConfig {
        max_iterations: 25,
        optimizer: qopt::OptimizerSpec::default_spsa(),
        seed: 11,
        record_every: 5,
    };
    // A runner drive is a pure function of (config, backend seed): a second run on a
    // fresh executor — new scheduler, new uids, new streams derived the same way —
    // reproduces the whole optimizer trajectory bit-for-bit.
    let run = || {
        let executor = Executor::single(SampledBackend::new(128, 21));
        qexec::run_single_vqa(
            &task,
            &ansatz,
            &InitialState::Basis(0),
            &vec![0.0; ansatz.num_parameters()],
            &executor.client(),
            &config,
        )
        .expect("well-formed task")
    };
    let first = run();
    let second = run();
    assert_eq!(first.final_params.len(), second.final_params.len());
    for (a, b) in first.final_params.iter().zip(&second.final_params) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "the service-driven optimizer trajectory must be reproducible"
        );
    }
    assert_eq!(first.shots_used, second.shots_used);
    assert_eq!(first.final_energy.to_bits(), second.final_energy.to_bits());
}
