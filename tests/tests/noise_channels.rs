//! Property and convergence tests for the `qnoise` trajectory-noise subsystem.
//!
//! Two pillars:
//!
//! * **Exactness at rate zero** — a noise model with all-zero rates must make the
//!   trajectory backend *bit-identical* to the ideal compiled path (proptest-pinned on
//!   random circuits), and batched trajectory evaluation must be bit-identical to the
//!   serial evaluate loop at every batch size, including under forced multi-worker
//!   across-state parallelism.
//! * **Convergence to the analytic channel** — trajectory averages over many seeded
//!   rollouts must converge (statistical tolerance, fixed seeds) to the closed-form
//!   depolarizing / dephasing / twirled-amplitude-damping attenuation factors on 1–2
//!   qubit circuits, and deterministic insertion replay must equal per-gate reference
//!   simulation with the errors spliced in as gates.

use proptest::prelude::*;
use qcircuit::{Angle, Circuit, Gate};
use qnoise::{PauliChannel, PauliNoiseModel, TrajectorySampler};
use qop::{PauliOp, PauliString, Statevector};
use qsim::CompiledCircuit;
use vqa::{Backend, EvalRequest, InitialState, NoisyStatevectorBackend, StatevectorBackend};

/// Forces multiple workers even on single-core CI machines (the vendored rayon honors
/// this like the real global-pool configuration).
fn force_parallel_workers() {
    // Honor the CI matrix's RAYON_NUM_THREADS (1 pins every kernel serial, 2/4 vary
    // the worker partitioning); default to 4 so a plain local `cargo test` still
    // drives the parallel paths on a single-core box.
    let threads = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .ok();
}

const NUM_PARAMS: usize = 4;

/// Strategy for one random gate (the `compiled_equivalence.rs` mix: every gate kind,
/// fixed and parameterized angles, diagonal-heavy Pauli rotations).
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    (
        0usize..14,
        0usize..n,
        0usize..n,
        -3.2f64..3.2,
        0usize..NUM_PARAMS,
        proptest::collection::vec(proptest::sample::select(vec!['I', 'X', 'Y', 'Z']), n),
        proptest::collection::vec(proptest::sample::select(vec!['I', 'Z']), n),
    )
        .prop_map(move |(kind, q, q2, theta, slot, label, diag_label)| {
            let q2 = if q2 == q { (q + 1) % n } else { q2 };
            match kind {
                0 => Gate::H(q),
                1 => Gate::X(q),
                2 => Gate::Y(q),
                3 => Gate::Z(q),
                4 => Gate::S(q),
                5 => Gate::Sdg(q),
                6 => Gate::Cx(q, q2),
                7 => Gate::Cz(q, q2),
                8 => Gate::Rx(q, Angle::Fixed(theta)),
                9 => Gate::Ry(q, Angle::param(slot)),
                10 => Gate::Rz(q, Angle::param(slot)),
                11 => Gate::PauliRotation(
                    PauliString::from_label(&label.iter().collect::<String>()).unwrap(),
                    Angle::Fixed(theta),
                ),
                12 => Gate::PauliRotation(
                    PauliString::from_label(&diag_label.iter().collect::<String>()).unwrap(),
                    Angle::Fixed(theta),
                ),
                _ => Gate::PauliRotation(
                    PauliString::from_label(&diag_label.iter().collect::<String>()).unwrap(),
                    Angle::param(slot),
                ),
            }
        })
}

fn circuit_from_gates(num_qubits: usize, gates: Vec<Gate>) -> Circuit {
    let mut circuit = Circuit::new(num_qubits);
    for gate in gates {
        circuit.push(gate);
    }
    circuit
}

/// A zero-rate model that still *lists* channels, so the trajectory machinery runs its
/// full path (channel flattening, schedule sampling) and must come out empty-handed.
fn zero_rate_model() -> PauliNoiseModel {
    PauliNoiseModel::depolarizing(0.0, 0.0)
        .with_single_qubit_channel(PauliChannel::Dephasing(0.0))
        .with_two_qubit_local(PauliChannel::AmplitudeDampingTwirled(0.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// THE rate-zero pin: executing with a zero-rate trajectory's (empty) insertion
    /// schedule — diagonal batch tables and all — is **bit-identical** to the ideal
    /// compiled execution, amplitude for amplitude, on random circuits.
    #[test]
    fn rate_zero_trajectories_are_bit_identical_to_ideal(
        gates in proptest::collection::vec(arb_gate(5), 1..25),
        params in proptest::collection::vec(-3.2f64..3.2, NUM_PARAMS),
    ) {
        let n = 5;
        let circuit = circuit_from_gates(n, gates);
        let compiled = CompiledCircuit::compile(&circuit);
        let sampler = TrajectorySampler::new(&compiled, &zero_rate_model());
        let tables = compiled.prepare_batch_tables(&[&params]);
        let mut ideal = Statevector::basis_state(n, 1);
        compiled.execute_in_place(&params, &mut ideal);
        for trajectory in 0..3 {
            let schedule = sampler.sample(11, trajectory);
            prop_assert!(schedule.is_empty());
            let mut noisy = Statevector::basis_state(n, 1);
            compiled.execute_in_place_with_insertions(&params, &mut noisy, &schedule, Some(&tables));
            for (a, b) in noisy.to_amplitudes().iter().zip(ideal.to_amplitudes()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    /// The backend over a zero-rate model reproduces the exact backend's values (the
    /// prepared states are bit-identical; the readouts differ only in identity-term
    /// accumulation, pinned here to 1e-12).
    #[test]
    fn rate_zero_backend_matches_exact_backend(
        gates in proptest::collection::vec(arb_gate(5), 1..25),
        params in proptest::collection::vec(-3.2f64..3.2, NUM_PARAMS),
    ) {
        let n = 5;
        let circuit = circuit_from_gates(n, gates);
        let charged = PauliOp::from_labels(n, &[("ZZIII", -1.0), ("IXIXI", 0.4), ("IIIII", 0.3)]);
        let tracking = PauliOp::from_labels(n, &[("ZIIIZ", 0.9)]);
        let mut noisy = NoisyStatevectorBackend::new(zero_rate_model(), 32, 11)
            .with_trajectories(3);
        let mut exact = StatevectorBackend::with_shots(32);
        let (nc, nf) = noisy.evaluate(
            &circuit, &params, &InitialState::Basis(1), &charged, &[&tracking],
        );
        let (ec, ef) = exact.evaluate(
            &circuit, &params, &InitialState::Basis(1), &charged, &[&tracking],
        );
        prop_assert!((nc - ec).abs() < 1e-12);
        prop_assert!((nf[0] - ef[0]).abs() < 1e-12);
        prop_assert_eq!(noisy.shots_used(), exact.shots_used());
    }

    /// The sampler itself: rate-0 models sample empty schedules for every trajectory,
    /// and nonzero-rate schedules depend only on (seed, trajectory).
    #[test]
    fn schedules_are_empty_at_rate_zero_and_reproducible_otherwise(
        gates in proptest::collection::vec(arb_gate(4), 1..20),
        seed in 0u64..500,
    ) {
        let circuit = circuit_from_gates(4, gates);
        let compiled = CompiledCircuit::compile(&circuit);
        let zero = TrajectorySampler::new(&compiled, &zero_rate_model());
        prop_assert!(zero.is_trivial());
        for t in 0..4 {
            prop_assert!(zero.sample(seed, t).is_empty());
        }
        let noisy = TrajectorySampler::new(
            &compiled,
            &PauliNoiseModel::ibm_like("p", 0.05, 0.1, 0.02, 0.0),
        );
        for t in [0u64, 3, 17] {
            prop_assert_eq!(noisy.sample(seed, t), noisy.sample(seed, t));
        }
    }

    /// Batched trajectory evaluation is bit-identical to the serial evaluate loop at
    /// batch sizes 1, 2 and 17 (the chunk-splitting shape), with real noise rates.
    #[test]
    fn noisy_batches_equal_serial_bit_for_bit(
        gates in proptest::collection::vec(arb_gate(4), 1..15),
        params in proptest::collection::vec(-3.2f64..3.2, NUM_PARAMS),
    ) {
        let n = 4;
        let circuit = circuit_from_gates(n, gates);
        let charged = PauliOp::from_labels(n, &[("ZZII", -1.0), ("IXXI", 0.5)]);
        let model = PauliNoiseModel::ibm_like("p", 0.03, 0.08, 0.01, 0.02);
        for batch_size in [1usize, 2, 17] {
            let candidates: Vec<Vec<f64>> = (0..batch_size)
                .map(|k| params.iter().map(|p| p + 0.013 * k as f64).collect())
                .collect();
            let requests: Vec<EvalRequest<'_>> = candidates
                .iter()
                .map(|c| EvalRequest {
                    circuit: &circuit,
                    params: c,
                    initial: &InitialState::Basis(0),
                    charged_op: &charged,
                    free_ops: &[],
                    stream: None,
                })
                .collect();
            let mut batched = NoisyStatevectorBackend::new(model.clone(), 16, 23)
                .with_trajectories(5);
            let results = batched.evaluate_batch(&requests);
            let mut serial = NoisyStatevectorBackend::new(model.clone(), 16, 23)
                .with_trajectories(5);
            for (c, r) in candidates.iter().zip(&results) {
                let (charged_serial, _) =
                    serial.evaluate(&circuit, c, &InitialState::Basis(0), &charged, &[]);
                prop_assert_eq!(charged_serial.to_bits(), r.charged.to_bits());
            }
        }
    }
}

proptest! {
    // Fewer cases for the forced-parallel property: each case prepares many states.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The across-state parallel path (small register × requests × trajectories crossing
    /// the threshold, forced multi-worker) equals the serial loop bit for bit.
    #[test]
    fn parallel_trajectory_batches_equal_serial(
        gates in proptest::collection::vec(arb_gate(11), 1..10),
        params in proptest::collection::vec(-3.2f64..3.2, NUM_PARAMS),
    ) {
        force_parallel_workers();
        // 6 requests × 3 trajectories × 2^11 amplitudes crosses the default
        // QSIM_PAR_THRESHOLD of 2^14 while each state stays below it: the regime where
        // the pool parallelizes across (request, trajectory) work items.
        let n = 11;
        let circuit = circuit_from_gates(n, gates);
        let charged = PauliOp::from_labels(n, &[("ZZIIIIIIIII", -1.0), ("IIXIXIIIIII", 0.3)]);
        let model = PauliNoiseModel::depolarizing(0.02, 0.05).with_readout(0.01);
        let candidates: Vec<Vec<f64>> = (0..6)
            .map(|k| params.iter().map(|p| p + 0.011 * k as f64).collect())
            .collect();
        let requests: Vec<EvalRequest<'_>> = candidates
            .iter()
            .map(|c| EvalRequest {
                circuit: &circuit,
                params: c,
                initial: &InitialState::Basis(0),
                charged_op: &charged,
                free_ops: &[],
                stream: None,
            })
            .collect();
        let mut batched = NoisyStatevectorBackend::new(model.clone(), 8, 31)
            .with_trajectories(3);
        let results = batched.evaluate_batch(&requests);
        let mut serial = NoisyStatevectorBackend::new(model, 8, 31).with_trajectories(3);
        for (c, r) in candidates.iter().zip(&results) {
            let (charged_serial, _) =
                serial.evaluate(&circuit, c, &InitialState::Basis(0), &charged, &[]);
            prop_assert_eq!(charged_serial.to_bits(), r.charged.to_bits());
        }
    }
}

/// Trajectory averages converge to the analytic channel factors on 1–2 qubit circuits
/// (fixed seeds; tolerances are ≳3σ of the trajectory-mean estimator).
#[test]
fn trajectory_averages_match_analytic_channels() {
    // Dephasing p after H: E[⟨X⟩] = 1 − 2p.
    let p = 0.3;
    let mut circ = Circuit::new(1);
    circ.push(Gate::H(0));
    let x = PauliOp::from_labels(1, &[("X", 1.0)]);
    let model = PauliNoiseModel::noiseless().with_single_qubit_channel(PauliChannel::Dephasing(p));
    let mut backend = NoisyStatevectorBackend::new(model, 0, 5).with_trajectories(20_000);
    let (value, _) = backend.evaluate(&circ, &[], &InitialState::Basis(0), &x, &[]);
    let expected = 1.0 - 2.0 * p;
    assert!(
        (value - expected).abs() < 0.025,
        "dephasing: {value} vs {expected}"
    );

    // Two fused single-qubit gates each carry their own depolarizing site:
    // E[⟨Y⟩] on S·H|0⟩ = (1 − 4p/3)².
    let p = 0.15;
    let mut circ = Circuit::new(1);
    circ.push(Gate::H(0));
    circ.push(Gate::S(0));
    let y = PauliOp::from_labels(1, &[("Y", 1.0)]);
    let mut backend = NoisyStatevectorBackend::new(PauliNoiseModel::depolarizing(p, 0.0), 0, 7)
        .with_trajectories(20_000);
    let (value, _) = backend.evaluate(&circ, &[], &InitialState::Basis(0), &y, &[]);
    let expected = (1.0 - 4.0 * p / 3.0) * (1.0 - 4.0 * p / 3.0);
    assert!(
        (value - expected).abs() < 0.025,
        "composed depolarizing: {value} vs {expected}"
    );

    // Two-qubit depolarizing p2 on a Bell pair: E[⟨ZZ⟩] = 1 − 16·p2/15 (the H's own
    // channel is disabled by using a two-qubit-only model).
    let p2 = 0.2;
    let mut bell = Circuit::new(2);
    bell.push(Gate::H(0));
    bell.push(Gate::Cx(0, 1));
    let zz = PauliOp::from_labels(2, &[("ZZ", 1.0)]);
    let mut backend = NoisyStatevectorBackend::new(PauliNoiseModel::depolarizing(0.0, p2), 0, 9)
        .with_trajectories(12_000);
    let (value, _) = backend.evaluate(&bell, &[], &InitialState::Basis(0), &zz, &[]);
    let expected = qnoise::uniform_depolarizing_attenuation(p2, 2);
    assert!(
        (value - expected).abs() < 0.035,
        "2q depolarizing: {value} vs {expected}"
    );

    // Pauli-twirled amplitude damping γ after X: E[⟨Z⟩] on |1⟩ = −(1 − γ).
    let gamma = 0.4;
    let mut circ = Circuit::new(1);
    circ.push(Gate::X(0));
    let z = PauliOp::from_labels(1, &[("Z", 1.0)]);
    let model = PauliNoiseModel::noiseless()
        .with_single_qubit_channel(PauliChannel::AmplitudeDampingTwirled(gamma));
    let mut backend = NoisyStatevectorBackend::new(model, 0, 13).with_trajectories(12_000);
    let (value, _) = backend.evaluate(&circ, &[], &InitialState::Basis(0), &z, &[]);
    let expected = -(1.0 - gamma);
    assert!(
        (value - expected).abs() < 0.03,
        "twirled AD: {value} vs {expected}"
    );
}

/// Deterministic insertion replay (every channel at probability 1) equals per-gate
/// reference simulation with the error Paulis spliced in as gates.
#[test]
fn certain_errors_replay_like_inserted_gates() {
    // H(0) · CX(0,1) · H(0) has no fusion between the three ops, so site placement is
    // unambiguous; dephasing at p = 1 inserts Z after every gate (on both qubits of CX,
    // in qubit order).
    let mut circ = Circuit::new(2);
    circ.push(Gate::H(0));
    circ.push(Gate::Cx(0, 1));
    circ.push(Gate::H(0));
    let compiled = CompiledCircuit::compile(&circ);
    let model = PauliNoiseModel::noiseless()
        .with_single_qubit_channel(PauliChannel::Dephasing(1.0))
        .with_two_qubit_local(PauliChannel::Dephasing(1.0));
    let sampler = TrajectorySampler::new(&compiled, &model);
    let schedule = sampler.sample(99, 0);
    assert_eq!(schedule.len(), 4, "one certain Z per charged channel site");
    let mut noisy = Statevector::zero_state(2);
    compiled.execute_in_place_with_insertions(&[], &mut noisy, &schedule, None);

    let mut spliced = Circuit::new(2);
    spliced.push(Gate::H(0));
    spliced.push(Gate::Z(0));
    spliced.push(Gate::Cx(0, 1));
    spliced.push(Gate::Z(0));
    spliced.push(Gate::Z(1));
    spliced.push(Gate::H(0));
    spliced.push(Gate::Z(0));
    let expected = qsim::reference::run_circuit(&spliced, &[], &Statevector::zero_state(2));
    let diff = noisy
        .to_amplitudes()
        .iter()
        .zip(expected.to_amplitudes())
        .map(|(a, b)| (*a - b).norm())
        .fold(0.0, f64::max);
    assert!(diff < 1e-12, "insertion replay diverged: {diff}");
}

/// Readout error composes with gate noise as a per-term-weight attenuation, and the
/// trajectory backend applies it deterministically (no extra variance).
#[test]
fn readout_error_attenuates_terms_by_weight() {
    let mut bell = Circuit::new(2);
    bell.push(Gate::H(0));
    bell.push(Gate::Cx(0, 1));
    let op = PauliOp::from_labels(2, &[("II", -1.0), ("ZZ", 0.8)]);
    let r = 0.05;
    let model = PauliNoiseModel::noiseless().with_readout(r);
    let mut backend = NoisyStatevectorBackend::new(model, 0, 3).with_trajectories(2);
    let (value, _) = backend.evaluate(&bell, &[], &InitialState::Basis(0), &op, &[]);
    // ⟨ZZ⟩ = 1 on the Bell pair; the identity term is untouched.
    let expected = -1.0 + 0.8 * qnoise::readout_attenuation(r, 2);
    assert!((value - expected).abs() < 1e-12, "{value} vs {expected}");
}
