//! Property tests pinning the optimized simulation kernels to the retained naive
//! reference implementations.
//!
//! The branch-free/in-place/parallel kernels in `qsim` and `qop` must be bit-for-bit
//! *algorithmically* equivalent to the originals (up to floating-point associativity), so
//! every property here demands agreement to 1e-12 on random circuits, random Pauli
//! rotations, and random Hamiltonians.  The 14-qubit properties run above the default
//! `QSIM_PAR_THRESHOLD` of 2^14 amplitudes, so they exercise the multi-threaded kernel
//! paths against the serial references.

use proptest::prelude::*;
use qcircuit::{Angle, Circuit, Gate};
use qop::{Complex64, PauliOp, PauliString, Statevector};
use qsim::{reference, run_circuit};

/// Forces the kernels' parallel paths even on single-core CI machines (the vendored
/// rayon honors this like the real global-pool configuration).
fn force_parallel_workers() {
    // Honor the CI matrix's RAYON_NUM_THREADS (1 pins every kernel serial, 2/4 vary
    // the worker partitioning); default to 4 so a plain local `cargo test` still
    // drives the parallel paths on a single-core box.
    let threads = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .ok();
}

/// A dense, structured, normalized state: every amplitude distinct so index or phase
/// mix-ups cannot cancel.
fn dense_state(num_qubits: usize) -> Statevector {
    let dim = 1usize << num_qubits;
    let mut psi = Statevector::from_amplitudes(
        (0..dim)
            .map(|i| Complex64::new((i as f64 * 0.137).sin() + 0.3, (i as f64 * 0.291).cos()))
            .collect(),
    );
    psi.normalize();
    psi
}

fn max_amplitude_diff(a: &Statevector, b: &Statevector) -> f64 {
    a.to_amplitudes()
        .iter()
        .zip(b.to_amplitudes())
        .map(|(x, y)| (*x - y).norm())
        .fold(0.0, f64::max)
}

/// Strategy for one random gate on an `n`-qubit register, covering every gate kind.
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    (0usize..11, 0usize..n, 0usize..n, -3.2f64..3.2).prop_map(move |(kind, q, q2, theta)| {
        // Force distinct qubits for the two-qubit gates.
        let q2 = if q2 == q { (q + 1) % n } else { q2 };
        match kind {
            0 => Gate::H(q),
            1 => Gate::X(q),
            2 => Gate::Y(q),
            3 => Gate::Z(q),
            4 => Gate::S(q),
            5 => Gate::Sdg(q),
            6 => Gate::Cx(q, q2),
            7 => Gate::Cz(q, q2),
            8 => Gate::Rx(q, Angle::Fixed(theta)),
            9 => Gate::Ry(q, Angle::Fixed(theta)),
            _ => Gate::Rz(q, Angle::Fixed(theta)),
        }
    })
}

fn arb_pauli_label(num_qubits: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select(vec!['I', 'X', 'Y', 'Z']),
        num_qubits,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn circuit_from_gates(num_qubits: usize, gates: Vec<Gate>) -> Circuit {
    let mut circuit = Circuit::new(num_qubits);
    for gate in gates {
        circuit.push(gate);
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fast branch-free gate kernels agree with the naive reference on random
    /// circuits over every gate kind, to 1e-12 per amplitude.
    #[test]
    fn random_circuits_agree_with_reference(
        gates in proptest::collection::vec(arb_gate(6), 1..40),
    ) {
        let n = 6;
        let circuit = circuit_from_gates(n, gates);
        let initial = dense_state(n);
        let fast = run_circuit(&circuit, &[], &initial);
        let naive = reference::run_circuit(&circuit, &[], &initial);
        prop_assert!(max_amplitude_diff(&fast, &naive) < 1e-12);
    }

    /// The in-place involution-pair Pauli-rotation kernel agrees with the naive
    /// clone-the-state construction on random strings and angles, to 1e-12.
    #[test]
    fn random_pauli_rotations_agree_with_reference(
        rotations in proptest::collection::vec((arb_pauli_label(6), -3.2f64..3.2), 1..12),
    ) {
        let n = 6;
        let mut fast = dense_state(n);
        let mut naive = fast.clone();
        for (label, theta) in rotations {
            let string = PauliString::from_label(&label).unwrap();
            qsim::apply_pauli_rotation(&mut fast, &string, theta);
            reference::apply_pauli_rotation(&mut naive, &string, theta);
        }
        prop_assert!(max_amplitude_diff(&fast, &naive) < 1e-12);
    }

    /// The optimized expectation kernel (diagonal fast path + pairwise gather) agrees
    /// with the naive scan-and-apply kernel for every term shape.
    #[test]
    fn string_expectation_matches_naive(label in arb_pauli_label(7)) {
        let psi = dense_state(7);
        let string = PauliString::from_label(&label).unwrap();
        let fast = PauliOp::string_expectation(&string, &psi);
        let naive = PauliOp::string_expectation_naive(&string, &psi);
        prop_assert!((fast - naive).abs() < 1e-12, "{fast} vs {naive} on {label}");
    }
}

proptest! {
    // Fewer cases for the 14-qubit properties: each touches 2^14 amplitudes per gate and
    // exists to drive the *parallel* kernel paths (dim == the default threshold).
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Parallel gate kernels (at/above the default threshold) match the serial reference.
    #[test]
    fn parallel_gate_kernels_agree_with_reference(
        gates in proptest::collection::vec(arb_gate(14), 1..10),
        rotation in arb_pauli_label(14),
        theta in -3.2f64..3.2,
    ) {
        force_parallel_workers();
        let n = 14;
        let circuit = circuit_from_gates(n, gates);
        let initial = dense_state(n);
        let mut fast = run_circuit(&circuit, &[], &initial);
        let mut naive = reference::run_circuit(&circuit, &[], &initial);
        let string = PauliString::from_label(&rotation).unwrap();
        qsim::apply_pauli_rotation(&mut fast, &string, theta);
        reference::apply_pauli_rotation(&mut naive, &string, theta);
        prop_assert!(max_amplitude_diff(&fast, &naive) < 1e-12);
    }

    /// Parallel Hamiltonian expectation (term-parallel with per-string fast paths) equals
    /// the serial naive sum.
    #[test]
    fn parallel_expectation_equals_serial(
        terms in proptest::collection::vec((arb_pauli_label(14), -1.0f64..1.0), 2..10),
    ) {
        force_parallel_workers();
        let psi = dense_state(14);
        let refs: Vec<(&str, f64)> = terms.iter().map(|(l, c)| (l.as_str(), *c)).collect();
        let op = PauliOp::from_labels(14, &refs);
        let parallel = op.expectation(&psi);
        let serial: f64 = op
            .terms()
            .iter()
            .map(|t| t.coefficient * PauliOp::string_expectation_naive(&t.string, &psi))
            .sum();
        prop_assert!((parallel - serial).abs() < 1e-10, "{parallel} vs {serial}");
        // Per-term expectations take the same parallel path and must agree term-by-term.
        let per_term = op.term_expectations(&psi);
        for (t, e) in op.terms().iter().zip(per_term) {
            let naive = PauliOp::string_expectation_naive(&t.string, &psi);
            prop_assert!((e - naive).abs() < 1e-12);
        }
    }
}

/// `H|ψ⟩` in gather form (and its allocation-reusing variant) matches the original
/// scatter implementation, including on the Lanczos-style repeated-application path.
#[test]
fn apply_into_matches_naive_scatter() {
    let n = 8;
    let psi = dense_state(n);
    let op = PauliOp::from_labels(
        n,
        &[
            ("ZZIIZZII", 0.7),
            ("XIYIZXIY", -0.2),
            ("YYYYIIYY", 0.4),
            ("IIXXIIXX", -0.9),
            ("ZIIIIIIZ", 1.3),
        ],
    );
    // Original scatter form.
    let mut expected = psi.zeros_like();
    for term in op.terms() {
        for b in 0..psi.dim() as u64 {
            let (b2, phase) = term.string.apply_to_basis(b);
            let contribution = phase * psi.amplitude(b) * term.coefficient;
            expected.set_amplitude(b2, expected.amplitude(b2) + contribution);
        }
    }
    let got = op.apply(&psi);
    let diff = max_amplitude_diff(&expected, &got);
    assert!(diff < 1e-12, "apply mismatch: {diff}");
}
