//! Fault-injection suite: seeded driver faults drive the supervision, retry, and
//! failover machinery end to end.
//!
//! The contract under test: **no injected driver fault may hang a handle or corrupt a
//! surviving result.**  Every job resolves to a structured outcome, jobs that survive
//! (directly, via retry, or via failover) are bit-identical to a fault-free replay on
//! a fresh backend, and the same seed replays the same scenario exactly — outcomes,
//! sequence numbers, and all.
//!
//! The CI `soak` job extends the seeded sweep with rotating seeds via
//! `QEXEC_FAULT_SEEDS` (comma-separated), so every run explores new schedules while
//! any failure stays reproducible by exporting the seed it printed.

use qcircuit::{Circuit, Entanglement, HardwareEfficientAnsatz};
use qexec::fault::{FaultKind, FaultPlan, FaultyBackend};
use qexec::{BackendHealth, EvalJob, ExecError, Executor, JobHandle, SubmitOptions};
use qop::PauliOp;
use std::sync::Arc;
use std::time::Duration;
use vqa::{Backend, InitialState, SampledBackend, StatevectorBackend};

/// Injected faults unwind through `catch_unwind` by design; silence the default hook
/// so the expected panics don't spray backtraces over the test output.
fn silence_expected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

fn demo_circuit(num_qubits: usize) -> Arc<Circuit> {
    Arc::new(HardwareEfficientAnsatz::new(num_qubits, 2, Entanglement::Circular).build())
}

fn demo_ops(num_qubits: usize) -> (Arc<PauliOp>, Arc<PauliOp>) {
    let mut charged = String::from("ZZ");
    let mut free = String::from("XI");
    while charged.len() < num_qubits {
        charged.push('I');
        free.push(if free.len() % 2 == 0 { 'Z' } else { 'I' });
    }
    (
        Arc::new(PauliOp::from_labels(
            num_qubits,
            &[(charged.as_str(), -1.0), (free.as_str(), 0.3)],
        )),
        Arc::new(PauliOp::from_labels(num_qubits, &[(free.as_str(), 0.7)])),
    )
}

fn demo_job(
    circuit: &Arc<Circuit>,
    charged: &Arc<PauliOp>,
    free: &Arc<PauliOp>,
    salt: usize,
) -> EvalJob {
    let params: Vec<f64> = (0..circuit.num_parameters())
        .map(|i| 0.05 * i as f64 + 0.013 * salt as f64)
        .collect();
    EvalJob::new(
        Arc::clone(circuit),
        params,
        InitialState::Basis(0),
        Arc::clone(charged),
    )
    .with_free_ops(vec![Arc::clone(free)])
}

/// Fault-free ground truth for one job on a fresh exact backend (statevector results
/// are a pure function of the job, so per-job replay is order-independent).
fn ground_truth(job: &EvalJob) -> (u64, Vec<u64>) {
    let mut backend = StatevectorBackend::with_shots(64);
    let free_refs: Vec<&PauliOp> = job.free_ops.iter().map(|op| op.as_ref()).collect();
    let (charged, free) = backend.evaluate(
        &job.circuit,
        &job.params,
        &job.initial,
        &job.charged_op,
        &free_refs,
    );
    (
        charged.to_bits(),
        free.iter().map(|v| v.to_bits()).collect(),
    )
}

/// One job's resolved outcome, reduced to comparable bits.
type Outcome = (Option<u64>, Result<(u64, Vec<u64>), ExecError>);

/// Runs the standard seeded-fault scenario: 4 waves of 4 jobs (each wave one slate)
/// against a faulty exact backend with retry budget 2, waiting each wave out.  Returns
/// every job with its sequence number and resolution, plus the jobs themselves for
/// ground-truth comparison.
fn run_seeded_scenario(seed: u64) -> (Vec<EvalJob>, Vec<Outcome>) {
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    let plan = FaultPlan::new(seed)
        .with_panic_rate(0.08)
        .with_transient_rate(0.15);
    let executor = Executor::single(FaultyBackend::new(StatevectorBackend::with_shots(64), plan));
    let client = executor.client();
    let opts = SubmitOptions {
        retries: 2,
        ..SubmitOptions::default()
    };
    let mut jobs = Vec::new();
    let mut outcomes = Vec::new();
    for wave in 0..4 {
        let mut handles: Vec<JobHandle> = Vec::new();
        executor.pause();
        for j in 0..4 {
            let job = demo_job(&circuit, &charged, &free, wave * 4 + j);
            handles.push(client.submit_with(job.clone(), &opts).unwrap());
            jobs.push(job);
        }
        executor.resume();
        for handle in &handles {
            let resolved = handle
                .wait_timeout(Duration::from_secs(60))
                .unwrap_or_else(|| panic!("an injected fault hung a handle (seed {seed})"));
            outcomes.push((
                handle.sequence(),
                resolved.map(|r| {
                    (
                        r.charged.to_bits(),
                        r.free.iter().map(|v| v.to_bits()).collect(),
                    )
                }),
            ));
        }
    }
    (jobs, outcomes)
}

fn sweep_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 23, 47];
    if let Ok(extra) = std::env::var("QEXEC_FAULT_SEEDS") {
        seeds.extend(
            extra
                .split(',')
                .filter_map(|s| s.trim().parse::<u64>().ok()),
        );
    }
    seeds
}

// ---------------------------------------------------------------------------
// Seeded sweep
// ---------------------------------------------------------------------------

/// Under randomized (but seeded) panics and transient faults with a retry budget:
/// every handle resolves, failures carry structured errors, and every surviving result
/// is bit-identical to the fault-free ground truth.
#[test]
fn seeded_faults_never_hang_and_survivors_stay_bit_identical() {
    silence_expected_panics();
    for seed in sweep_seeds() {
        let (jobs, outcomes) = run_seeded_scenario(seed);
        let mut survivors = 0usize;
        for (job, (seq, outcome)) in jobs.iter().zip(&outcomes) {
            assert!(
                seq.is_some(),
                "every scheduled job gets a sequence number (seed {seed})"
            );
            match outcome {
                Ok(bits) => {
                    survivors += 1;
                    assert_eq!(
                        *bits,
                        ground_truth(job),
                        "a surviving result diverged from the fault-free replay (seed {seed})"
                    );
                }
                Err(ExecError::Execution(msg)) => {
                    assert!(
                        msg.contains("injected"),
                        "driver failure should carry the injected-fault message, got {msg:?}"
                    );
                }
                Err(ExecError::BackendQuarantined { .. }) => {}
                Err(other) => {
                    panic!("unexpected resolution under injected faults (seed {seed}): {other}")
                }
            }
        }
        // The retry budget should rescue most waves at these fault rates; an all-dead
        // run would mean supervision is failing jobs it could have saved.
        assert!(
            survivors > 0,
            "no job survived seed {seed} despite retry budget"
        );
    }
}

/// The harness is counter-based, not stream-based: running the identical scenario
/// twice yields identical outcomes — same survivors, same errors, same sequence
/// numbers.
#[test]
fn same_seed_replays_the_same_scenario_exactly() {
    silence_expected_panics();
    let (_, first) = run_seeded_scenario(23);
    let (_, second) = run_seeded_scenario(23);
    assert_eq!(first, second, "seeded fault scenario failed to replay");
}

// ---------------------------------------------------------------------------
// Quarantine & canary readmission
// ---------------------------------------------------------------------------

/// A hard driver panic quarantines the backend; the next scheduler round runs a canary
/// probe, and a passing canary readmits the backend, which then serves jobs normally.
#[test]
fn hard_panic_quarantines_then_canary_readmits() {
    silence_expected_panics();
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    // Exactly one scripted hard panic at driver call 0; everything after is clean.
    let plan = FaultPlan::new(1).with_fault_at(0, Some(FaultKind::Panic));
    let executor = Executor::builder()
        .register(
            "flaky",
            FaultyBackend::new(StatevectorBackend::with_shots(64), plan),
        )
        .start();
    let client = executor.client();

    let doomed = client
        .submit(demo_job(&circuit, &charged, &free, 0))
        .unwrap();
    match doomed.wait().unwrap_err() {
        ExecError::Execution(msg) => assert!(msg.contains("injected fault at driver call 0")),
        other => panic!("expected the injected panic as Execution, got {other}"),
    }
    assert_eq!(
        executor.backend_health("flaky").unwrap(),
        BackendHealth::Quarantined { failures: 1 }
    );
    assert_eq!(executor.stats().panics, 1);

    // The next submission's round is past the canary backoff: recover + canary probe
    // (clean by the plan) readmit the backend before the job dispatches.
    let job = demo_job(&circuit, &charged, &free, 1);
    let revived = client.submit(job.clone()).unwrap();
    let result = revived.wait().expect("job runs after readmission");
    assert_eq!(
        (
            result.charged.to_bits(),
            result
                .free
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>()
        ),
        ground_truth(&job)
    );
    assert_eq!(
        executor.backend_health("flaky").unwrap(),
        BackendHealth::Healthy
    );
    assert_eq!(executor.stats().readmissions, 1);
}

// ---------------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------------

/// While a target backend is quarantined, failover-opted jobs execute on a
/// capability-compatible standby (bit-identical to running there directly); jobs that
/// did not opt in fail fast with `BackendQuarantined`.
#[test]
fn quarantined_target_fails_over_or_fails_fast() {
    silence_expected_panics();
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    // The primary faults on every call — including canary probes, so it never rejoins.
    let plan = FaultPlan::new(7).with_panic_rate(1.0);
    let executor = Executor::builder()
        .register(
            "primary",
            FaultyBackend::new(StatevectorBackend::with_shots(64), plan),
        )
        .register("standby", StatevectorBackend::with_shots(64))
        .start();
    let client = executor.client();
    let on_primary = |failover: bool| SubmitOptions {
        backend: Some("primary".to_string()),
        failover,
        ..SubmitOptions::default()
    };

    // Trip the quarantine.
    let tripwire = client
        .submit_with(demo_job(&circuit, &charged, &free, 0), &on_primary(false))
        .unwrap();
    assert!(matches!(
        tripwire.wait().unwrap_err(),
        ExecError::Execution(_)
    ));
    assert!(matches!(
        executor.backend_health("primary").unwrap(),
        BackendHealth::Quarantined { .. }
    ));

    // No failover: fail fast, naming the quarantined backend.
    let stuck = client
        .submit_with(demo_job(&circuit, &charged, &free, 1), &on_primary(false))
        .unwrap();
    assert_eq!(
        stuck.wait().unwrap_err(),
        ExecError::BackendQuarantined {
            backend: "primary".to_string()
        }
    );

    // Failover: the standby serves the job, bit-identical to a fresh exact backend.
    let job = demo_job(&circuit, &charged, &free, 2);
    let rescued = client.submit_with(job.clone(), &on_primary(true)).unwrap();
    let result = rescued
        .wait()
        .expect("failover job completes on the standby");
    assert_eq!(
        (
            result.charged.to_bits(),
            result
                .free
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>()
        ),
        ground_truth(&job)
    );
    assert!(executor.stats().failovers >= 1);
    assert_eq!(
        executor.backend_health("standby").unwrap(),
        BackendHealth::Healthy
    );
}

// ---------------------------------------------------------------------------
// Transient faults & retry
// ---------------------------------------------------------------------------

/// A transient fault with retry budget: the job retries on the *same* backend (no
/// quarantine), succeeds, and the result is bit-identical to the fault-free run.
#[test]
fn transient_fault_retries_to_a_bit_identical_result() {
    silence_expected_panics();
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    let plan = FaultPlan::new(3).with_fault_at(0, Some(FaultKind::Transient));
    let faulty = FaultyBackend::new(StatevectorBackend::with_shots(64), plan);
    let fault_stats = faulty.stats();
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, faulty)
        .start();
    let client = executor.client();
    let job = demo_job(&circuit, &charged, &free, 0);
    let handle = client
        .submit_with(
            job.clone(),
            &SubmitOptions {
                retries: 1,
                ..SubmitOptions::default()
            },
        )
        .unwrap();
    let result = handle.wait().expect("retry rescues the transient fault");
    assert_eq!(
        (
            result.charged.to_bits(),
            result
                .free
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>()
        ),
        ground_truth(&job)
    );
    let stats = executor.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.panics, 0, "transient faults must not quarantine");
    assert_eq!(
        executor.backend_health(qexec::DEFAULT_BACKEND).unwrap(),
        BackendHealth::Healthy
    );
    assert_eq!(fault_stats.calls(), 2, "faulted attempt plus clean retry");
    assert_eq!(fault_stats.transients(), 1);
    assert_eq!(fault_stats.panics(), 0);
}

/// Transient faults past the retry budget surface as `Execution` errors carrying the
/// transient marker — still no quarantine.
#[test]
fn exhausted_retries_fail_with_the_transient_message() {
    silence_expected_panics();
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    let plan = FaultPlan::new(5)
        .with_fault_at(0, Some(FaultKind::Transient))
        .with_fault_at(1, Some(FaultKind::Transient));
    let executor = Executor::single(FaultyBackend::new(StatevectorBackend::with_shots(64), plan));
    let client = executor.client();
    let handle = client
        .submit_with(
            demo_job(&circuit, &charged, &free, 0),
            &SubmitOptions {
                retries: 1,
                ..SubmitOptions::default()
            },
        )
        .unwrap();
    match handle.wait().unwrap_err() {
        ExecError::Execution(msg) => assert!(
            msg.starts_with("transient fault:"),
            "expected the transient marker, got {msg:?}"
        ),
        other => panic!("expected Execution, got {other}"),
    }
    assert_eq!(
        executor.backend_health(qexec::DEFAULT_BACKEND).unwrap(),
        BackendHealth::Healthy
    );
}

/// A stand-in for a third-party driver that carries cross-request mutable RNG state:
/// it computes like the exact backend but deliberately does not advertise
/// `retry_safe` (the workspace backends all do, since the counter-based `qrng`
/// rework keys their draws per request).
struct StreamStatefulBackend(StatevectorBackend);

impl Backend for StreamStatefulBackend {
    fn evaluate(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        charged_op: &PauliOp,
        free_ops: &[&PauliOp],
    ) -> (f64, Vec<f64>) {
        self.0
            .evaluate(circuit, params, initial, charged_op, free_ops)
    }

    fn probe(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        initial: &InitialState,
        op: &PauliOp,
    ) -> f64 {
        self.0.probe(circuit, params, initial, op)
    }

    fn shots_used(&self) -> u64 {
        self.0.shots_used()
    }

    fn reset_shots(&mut self) {
        self.0.reset_shots()
    }

    fn shots_per_pauli(&self) -> u64 {
        self.0.shots_per_pauli()
    }

    fn name(&self) -> &'static str {
        "stream-stateful"
    }

    fn capabilities(&self) -> vqa::BackendCaps {
        vqa::BackendCaps {
            retry_safe: false,
            ..self.0.capabilities()
        }
    }
}

/// Retries are only allowed where re-execution is observationally invisible: a driver
/// that does not advertise `retry_safe` refuses retry budgets at the submission
/// boundary.
#[test]
fn retries_require_the_retry_safe_capability() {
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    let executor = Executor::single(StreamStatefulBackend(StatevectorBackend::with_shots(64)));
    let client = executor.client();
    let err = client
        .submit_with(
            demo_job(&circuit, &charged, &free, 0),
            &SubmitOptions {
                retries: 1,
                ..SubmitOptions::default()
            },
        )
        .unwrap_err();
    assert_eq!(
        err,
        ExecError::MissingCapability {
            backend: qexec::DEFAULT_BACKEND.to_string(),
            missing: "retry_safe",
        }
    );
}

/// The stochastic backends are retry-safe since the counter-based `qrng` rework: a
/// sampled backend accepts a retry budget, and a retry rescued by it is bit-identical
/// to the fault-free run of the same job — the re-execution reuses the job's pinned
/// stream and disturbs nothing else.
#[test]
fn sampled_backend_retries_bit_identically() {
    silence_expected_panics();
    let circuit = demo_circuit(3);
    let (charged, free) = demo_ops(3);
    // The whole first slate is one `evaluate_batch` submission = driver call 0.
    let plan = FaultPlan::new(13).with_fault_at(0, Some(FaultKind::Transient));
    let executor = Executor::builder()
        .register(
            qexec::DEFAULT_BACKEND,
            FaultyBackend::new(SampledBackend::new(256, 42), plan),
        )
        .paused()
        .start();
    let client = executor.client();
    let opts = SubmitOptions {
        retries: 1,
        ..SubmitOptions::default()
    };
    let handles: Vec<JobHandle> = (0..3)
        .map(|salt| {
            client
                .submit_with(demo_job(&circuit, &charged, &free, salt), &opts)
                .expect("sampled backends accept retry budgets")
        })
        .collect();
    executor.resume();
    // Every handle resolves despite the injected fault (the whole batch faulted at
    // driver call 0 retries one slate later, streams pinned).
    let results: Vec<_> = handles
        .iter()
        .map(|h| h.wait().expect("retry rescues the batch"))
        .collect();
    assert_eq!(executor.stats().retries, 3);
    // Each result is bit-identical to evaluating the same job + stream on a fresh,
    // fault-free backend.
    let mut replay = SampledBackend::new(256, 42);
    for (salt, (handle, result)) in handles.iter().zip(&results).enumerate() {
        let job = demo_job(&circuit, &charged, &free, salt);
        let free_refs: Vec<&PauliOp> = job.free_ops.iter().map(|op| op.as_ref()).collect();
        let request = vqa::EvalRequest {
            circuit: &job.circuit,
            params: &job.params,
            initial: &job.initial,
            charged_op: &job.charged_op,
            free_ops: &free_refs,
            stream: Some(handle.rng_stream()),
        };
        let replayed = replay
            .evaluate_batch(std::slice::from_ref(&request))
            .remove(0);
        assert_eq!(
            result.charged.to_bits(),
            replayed.charged.to_bits(),
            "a rescued retry diverged from the fault-free stream replay"
        );
    }
}
