//! Network-layer integration suite: the `qnet` wire codec, server, and client.
//!
//! Three families of properties:
//!
//! 1. **Codec safety** — every frame type round-trips bit-exactly, and *no* byte
//!    sequence (truncated, corrupted, oversized, or pure garbage) makes the decoder
//!    panic: the wire is the system's first untrusted-input boundary, so malformed
//!    input must surface as a structured [`qnet::WireError`], never as a crash.
//! 2. **Loopback transparency** — a job submitted through a real TCP connection
//!    produces results bit-identical to the same job submitted through a local
//!    [`qexec::ExecClient`], including the total `qrng` draw count, for exact,
//!    sampled, and noisy-trajectory backends across worker counts.  The whole
//!    `vqa`-level driver ([`qexec::run_single_vqa`]) runs remotely unchanged and
//!    reproduces the local trajectory bit-for-bit.
//! 3. **Service behavior** — concurrent connections all complete with per-connection
//!    accounting, malformed frames answer with an error frame while the connection
//!    survives, hostile jobs are refused with the same stable codes remotely as
//!    locally, over-capacity connects are politely refused, and shutdown fails
//!    in-flight work cleanly instead of hanging or dropping it.

use proptest::prelude::*;
use qcircuit::{Angle, Circuit, Entanglement, Gate, HardwareEfficientAnsatz};
use qexec::{
    run_single_vqa, EvalJob, ExecError, Executor, StreamId, SubmitOptions, CAPABILITY_NAMES,
    MAX_JOB_QUBITS,
};
use qnet::wire::{self, ControlKind, Frame, SubmitFrame, WireError};
use qnet::{NetClient, NetServer};
use qnoise::PauliNoiseModel;
use qop::{PauliOp, PauliString};
use qrng::CounterRng;
use rand::Rng as _;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use vqa::{
    Backend, BackendCaps, EvalResult, InitialState, NoisyStatevectorBackend, SampledBackend,
    StatevectorBackend, VqaRunConfig, VqaTask,
};

/// Tests that execute jobs (and therefore advance the process-global
/// `qrng::total_draws` counter) serialize on this lock, so the draw-count
/// comparisons are not polluted by concurrent siblings.
static SERIAL: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------------
// Deterministic generators (seeded, so proptest cases are reproducible).
// ---------------------------------------------------------------------------

fn gen_circuit(rng: &mut CounterRng) -> Circuit {
    let num_qubits = 2 + (rng.next_u64() % 3) as usize;
    let mut circuit = Circuit::new(num_qubits);
    let gates = rng.next_u64() % 14;
    for _ in 0..gates {
        let q = (rng.next_u64() % num_qubits as u64) as usize;
        let q2 = (q + 1 + (rng.next_u64() % (num_qubits as u64 - 1)) as usize) % num_qubits;
        let angle = gen_angle(rng);
        let gate = match rng.next_u64() % 12 {
            0 => Gate::H(q),
            1 => Gate::X(q),
            2 => Gate::Y(q),
            3 => Gate::Z(q),
            4 => Gate::S(q),
            5 => Gate::Sdg(q),
            6 => Gate::Cx(q, q2),
            7 => Gate::Cz(q, q2),
            8 => Gate::Rx(q, angle),
            9 => Gate::Ry(q, angle),
            10 => Gate::Rz(q, angle),
            _ => Gate::PauliRotation(gen_pauli_string(rng, num_qubits), angle),
        };
        circuit.try_push(gate).expect("generated gate is in range");
    }
    circuit
}

fn gen_angle(rng: &mut CounterRng) -> Angle {
    if rng.next_u64() % 2 == 0 {
        Angle::Fixed(gen_f64(rng))
    } else {
        Angle::Param {
            index: (rng.next_u64() % 6) as usize,
            multiplier: gen_f64(rng),
        }
    }
}

/// An arbitrary bit pattern as `f64` — including NaNs, infinities, and subnormals;
/// the codec ships raw IEEE-754 bits, so all of them must survive.
fn gen_f64(rng: &mut CounterRng) -> f64 {
    f64::from_bits(rng.next_u64())
}

fn gen_pauli_string(rng: &mut CounterRng, num_qubits: usize) -> PauliString {
    let mask = (1u64 << num_qubits) - 1;
    PauliString::from_masks(rng.next_u64() & mask, rng.next_u64() & mask, num_qubits)
}

fn gen_op(rng: &mut CounterRng, num_qubits: usize) -> PauliOp {
    let mut op = PauliOp::zero(num_qubits);
    for _ in 0..1 + rng.next_u64() % 4 {
        op.add_term(gen_pauli_string(rng, num_qubits), gen_f64(rng));
    }
    op
}

fn gen_opts(rng: &mut CounterRng) -> SubmitOptions {
    let mut opts = SubmitOptions::new()
        .priority(rng.next_u64() as i32)
        .require(BackendCaps {
            batch: rng.next_u64() % 2 == 0,
            shots: rng.next_u64() % 2 == 0,
            noise: rng.next_u64() % 2 == 0,
            trajectories: rng.next_u64() % 2 == 0,
            retry_safe: rng.next_u64() % 2 == 0,
        })
        .retries((rng.next_u64() % 4) as u32)
        .failover(rng.next_u64() % 2 == 0);
    if rng.next_u64() % 2 == 0 {
        opts = opts.backend(format!("backend-{}", rng.next_u64() % 100));
    }
    if rng.next_u64() % 2 == 0 {
        opts = opts.rng_stream(StreamId::from_raw(rng.next_u64()));
    }
    opts
}

fn gen_job(rng: &mut CounterRng) -> EvalJob {
    let circuit = gen_circuit(rng);
    let n = circuit.num_qubits();
    let params: Vec<f64> = (0..rng.next_u64() % 8).map(|_| gen_f64(rng)).collect();
    let initial = if rng.next_u64() % 2 == 0 {
        InitialState::Basis(rng.next_u64())
    } else {
        InitialState::UniformSuperposition
    };
    let free: Vec<Arc<PauliOp>> = (0..rng.next_u64() % 3)
        .map(|_| Arc::new(gen_op(rng, n)))
        .collect();
    let mut job = EvalJob::new(Arc::new(circuit), params, initial, Arc::new(gen_op(rng, n)))
        .with_free_ops(free);
    if rng.next_u64() % 2 == 0 {
        job = job.with_rng_stream(StreamId::from_raw(rng.next_u64()));
    }
    job
}

fn gen_submit_frame(rng: &mut CounterRng) -> SubmitFrame {
    SubmitFrame {
        request_id: rng.next_u64(),
        probe: rng.next_u64() % 2 == 0,
        opts: gen_opts(rng),
        job: gen_job(rng),
    }
}

fn gen_text(rng: &mut CounterRng) -> String {
    let len = rng.next_u64() % 24;
    (0..len)
        .map(|_| char::from_u32(0x20 + (rng.next_u64() % 0x60) as u32).unwrap())
        .collect()
}

/// One arbitrary frame of the requested type tag (0..5).
fn gen_frame(rng: &mut CounterRng, kind: u64) -> Frame {
    match kind {
        0 => Frame::Submit(gen_submit_frame(rng)),
        1 => Frame::SubmitBatch(
            (0..1 + rng.next_u64() % 3)
                .map(|_| gen_submit_frame(rng))
                .collect(),
        ),
        2 => Frame::Result {
            request_id: rng.next_u64(),
            result: EvalResult {
                charged: gen_f64(rng),
                free: (0..rng.next_u64() % 4).map(|_| gen_f64(rng)).collect(),
                shots: rng.next_u64(),
            },
        },
        3 => Frame::Error {
            request_id: rng.next_u64(),
            code: rng.next_u64() as u16,
            aux0: rng.next_u64(),
            aux1: rng.next_u64(),
            text: gen_text(rng),
        },
        _ => Frame::Control(if rng.next_u64() % 2 == 0 {
            ControlKind::OverCapacity
        } else {
            ControlKind::ShuttingDown
        }),
    }
}

fn encode(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::write_frame(&mut buf, frame, wire::DEFAULT_MAX_FRAME).expect("encodable frame");
    buf
}

fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
    wire::read_frame(&mut &bytes[..], wire::DEFAULT_MAX_FRAME)
}

// ---------------------------------------------------------------------------
// 1. Codec safety.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every frame type survives encode → decode → re-encode bit-exactly (the
    /// byte-level fixed point implies the value-level round trip, without needing
    /// `PartialEq` on job payloads).
    #[test]
    fn codec_round_trips_every_frame_type(seed in 0u64..u64::MAX, kind in 0u64..5) {
        let mut rng = CounterRng::new(qrng::mix(seed, 0x636f_6465));
        let frame = gen_frame(&mut rng, kind);
        let bytes = encode(&frame);
        let decoded = decode(&bytes).expect("well-formed frame decodes");
        prop_assert_eq!(encode(&decoded), bytes);
    }

    /// Truncating a valid frame at any point yields an error, never a panic and
    /// never a bogus success.
    #[test]
    fn truncated_frames_error_cleanly(seed in 0u64..u64::MAX, kind in 0u64..5, cut in 0.0f64..1.0) {
        let mut rng = CounterRng::new(qrng::mix(seed, 0x7472_756e));
        let bytes = encode(&gen_frame(&mut rng, kind));
        let cut = ((bytes.len() - 1) as f64 * cut) as usize;
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    /// Corrupting any single byte of a valid frame never panics the decoder (it may
    /// still decode — a flipped payload bit can be another valid value — but it must
    /// return, not crash).
    #[test]
    fn corrupted_frames_never_panic(seed in 0u64..u64::MAX, kind in 0u64..5, pos in 0.0f64..1.0, byte in 0u64..256) {
        let mut rng = CounterRng::new(qrng::mix(seed, 0x636f_7272));
        let mut bytes = encode(&gen_frame(&mut rng, kind));
        let pos = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[pos] = byte as u8;
        let _ = decode(&bytes);
    }

    /// Arbitrary garbage bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u64..256, 0..64)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = decode(&bytes);
    }
}

/// A header declaring an oversized payload is refused before any allocation, and the
/// writer symmetrically refuses to emit a frame beyond the cap.
#[test]
fn oversized_frames_are_refused_both_ways() {
    let mut header = Vec::new();
    header.extend_from_slice(&wire::MAGIC.to_le_bytes());
    header.push(wire::VERSION);
    header.push(wire::TYPE_SUBMIT);
    header.extend_from_slice(&7u64.to_le_bytes());
    header.extend_from_slice(&(wire::DEFAULT_MAX_FRAME as u32 + 1).to_le_bytes());
    match decode(&header) {
        Err(WireError::FrameTooLarge { len, max }) => {
            assert_eq!(len, wire::DEFAULT_MAX_FRAME + 1);
            assert_eq!(max, wire::DEFAULT_MAX_FRAME);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }

    let mut rng = CounterRng::new(1);
    let frame = gen_frame(&mut rng, 0);
    let mut buf = Vec::new();
    assert!(matches!(
        wire::write_frame(&mut buf, &frame, wire::HEADER_LEN),
        Err(WireError::FrameTooLarge { .. })
    ));
    assert!(buf.is_empty(), "refused frame must write nothing");
}

/// Every `ExecError` variant survives the wire: `code()`/`parts()` →
/// `from_code` is the identity, and codes are unique (they are the protocol- and
/// metrics-level contract).
#[test]
fn exec_error_codes_round_trip_and_are_unique() {
    let variants = vec![
        ExecError::UnknownBackend("gpu0".into()),
        ExecError::MissingCapability {
            backend: "sv".into(),
            missing: CAPABILITY_NAMES[3],
        },
        ExecError::EmptyCircuit,
        ExecError::ParameterCountMismatch {
            expected: 6,
            got: 2,
        },
        ExecError::QubitCountMismatch {
            circuit: 4,
            operator: 7,
        },
        ExecError::BasisStateOutOfRange {
            basis: 99,
            num_qubits: 3,
        },
        ExecError::Cancelled,
        ExecError::ShutDown,
        ExecError::DeadlineExceeded,
        ExecError::Overloaded,
        ExecError::BackendQuarantined {
            backend: "noisy".into(),
        },
        ExecError::Execution("driver panicked: det < 0".into()),
        ExecError::NonFiniteParameter { index: 5 },
        ExecError::RegisterTooLarge {
            num_qubits: 61,
            max: MAX_JOB_QUBITS,
        },
        ExecError::EmptyObservable,
        ExecError::Transport("connection reset by peer".into()),
    ];
    let mut seen = std::collections::HashSet::new();
    for err in variants {
        let code = err.code();
        assert!(seen.insert(code), "duplicate wire code {code}");
        let (aux0, aux1, text) = err.parts();
        assert_eq!(
            ExecError::from_code(code, aux0, aux1, text),
            Some(err.clone()),
            "round trip failed for {err:?}"
        );
        // The error frame path composes the same pieces.
        let frame = Frame::from_exec_error(42, &err);
        match decode(&encode(&frame)).expect("error frame decodes") {
            Frame::Error {
                request_id,
                code,
                aux0,
                aux1,
                text,
            } => {
                assert_eq!(request_id, 42);
                assert_eq!(Frame::to_exec_error(code, aux0, aux1, text), err);
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }
    assert!(
        ExecError::from_code(0, 0, 0, String::new()).is_none(),
        "code 0 is reserved"
    );
    assert!(ExecError::from_code(9999, 0, 0, String::new()).is_none());
}

// ---------------------------------------------------------------------------
// 2. Loopback transparency.
// ---------------------------------------------------------------------------

const BACKENDS: usize = 3;
const JOBS: usize = 8;
const QUBITS: usize = 3;

type BackendFactory = Box<dyn Fn() -> Box<dyn Backend + Send>>;

fn backend_factories() -> Vec<(&'static str, BackendFactory)> {
    let model = PauliNoiseModel::ibm_like("qnet-loopback", 0.02, 0.05, 0.01, 0.01);
    vec![
        (
            "exact",
            Box::new(|| Box::new(StatevectorBackend::with_shots(64)) as Box<dyn Backend + Send>),
        ),
        (
            "sampled",
            Box::new(|| Box::new(SampledBackend::new(256, 42)) as Box<dyn Backend + Send>),
        ),
        (
            "noisy-trajectory",
            Box::new(move || {
                Box::new(
                    NoisyStatevectorBackend::new(model.clone(), 50, 3)
                        .with_trajectories(5)
                        .with_shot_sampling(),
                ) as Box<dyn Backend + Send>
            }),
        ),
    ]
}

fn loopback_jobs() -> Vec<(EvalJob, SubmitOptions)> {
    let circuit = Arc::new(HardwareEfficientAnsatz::new(QUBITS, 2, Entanglement::Circular).build());
    let charged = Arc::new(PauliOp::from_labels(QUBITS, &[("ZZI", -1.0), ("IXX", 0.3)]));
    let free = Arc::new(PauliOp::from_labels(QUBITS, &[("XIZ", 0.7)]));
    (0..JOBS)
        .map(|i| {
            let params: Vec<f64> = (0..circuit.num_parameters())
                .map(|p| 0.05 * p as f64 + 0.017 * i as f64)
                .collect();
            let job = EvalJob::new(
                Arc::clone(&circuit),
                params,
                InitialState::Basis(0),
                Arc::clone(&charged),
            )
            .with_free_ops(vec![Arc::clone(&free)])
            .with_rng_stream(StreamId::named(&format!("qnet-loopback-job{i}")));
            let opts = SubmitOptions::new().backend(format!("b{}", i % BACKENDS));
            (job, opts)
        })
        .collect()
}

type Bits = (u64, Vec<u64>, u64);

fn to_bits(r: &EvalResult) -> Bits {
    (
        r.charged.to_bits(),
        r.free.iter().map(|v| v.to_bits()).collect(),
        r.shots,
    )
}

fn build_executor(make: &dyn Fn() -> Box<dyn Backend + Send>, workers: usize) -> Executor {
    let mut builder = Executor::builder().workers(workers);
    for b in 0..BACKENDS {
        builder = builder.register_boxed(format!("b{b}"), make());
    }
    builder.start()
}

fn run_local(make: &dyn Fn() -> Box<dyn Backend + Send>, workers: usize) -> (Vec<Bits>, u64) {
    let executor = build_executor(make, workers);
    let client = executor.client();
    let draws_before = qrng::total_draws();
    let handles: Vec<_> = loopback_jobs()
        .into_iter()
        .map(|(job, opts)| client.submit_with(job, &opts).expect("local submit"))
        .collect();
    let results = handles
        .iter()
        .map(|h| to_bits(&h.wait().expect("local job executes")))
        .collect();
    drop(executor);
    (results, qrng::total_draws() - draws_before)
}

fn run_remote(
    make: &dyn Fn() -> Box<dyn Backend + Send>,
    workers: usize,
    batch: bool,
) -> (Vec<Bits>, u64) {
    let executor = Arc::new(build_executor(make, workers));
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&executor)).expect("bind loopback");
    let client = NetClient::connect(server.local_addr()).expect("connect loopback");
    let draws_before = qrng::total_draws();
    let results: Vec<Bits> = if batch {
        // One coalesced slate; per-job backend choices ride on the job-level stream
        // pin, default opts otherwise (group API has a single opts set), so pin the
        // backend via the default (first-registered) only when batching.
        let jobs: Vec<EvalJob> = loopback_jobs().into_iter().map(|(job, _)| job).collect();
        let handles = client.submit_group(jobs).expect("batch submit");
        handles
            .iter()
            .map(|h| to_bits(&h.wait().expect("remote job executes")))
            .collect()
    } else {
        let handles: Vec<_> = loopback_jobs()
            .into_iter()
            .map(|(job, opts)| client.submit_with(job, &opts).expect("remote submit"))
            .collect();
        handles
            .iter()
            .map(|h| to_bits(&h.wait().expect("remote job executes")))
            .collect()
    };
    let draws = qrng::total_draws() - draws_before;
    assert_eq!(client.rtt().count, JOBS as u64, "every job records an RTT");
    drop(client);
    server.shutdown();
    (results, draws)
}

/// A job submitted over TCP is bit-identical to the same job submitted in-process —
/// results *and* total RNG draw count — for every backend family, across worker
/// counts.  This is the loopback transparency contract: the network layer adds no
/// observable behavior to execution.
#[test]
fn loopback_results_are_bit_identical_to_local() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for (family, make) in backend_factories() {
        let (baseline, baseline_draws) = run_local(make.as_ref(), 1);
        for workers in [1usize, 2, 4] {
            let (remote, remote_draws) = run_remote(make.as_ref(), workers, false);
            assert_eq!(
                remote, baseline,
                "{family} remote results diverged at workers={workers}"
            );
            assert_eq!(
                remote_draws, baseline_draws,
                "{family} remote draw count diverged at workers={workers}"
            );
        }
    }
}

/// A batch frame (one coalesced slate server-side) produces the same bits as local
/// execution of the same stream-pinned jobs.
#[test]
fn batched_remote_submission_is_bit_identical() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (_, make) = backend_factories().remove(1);
    // Batch submissions use default options (no per-job backend routing), so the
    // local baseline must match: default backend, same pinned streams.
    let executor = build_executor(make.as_ref(), 2);
    let client = executor.client();
    let draws_before = qrng::total_draws();
    let jobs: Vec<EvalJob> = loopback_jobs().into_iter().map(|(job, _)| job).collect();
    let handles = client.submit_all(jobs).expect("local batch");
    let baseline: Vec<Bits> = handles
        .iter()
        .map(|h| to_bits(&h.wait().expect("local job executes")))
        .collect();
    let baseline_draws = qrng::total_draws() - draws_before;
    drop(executor);

    let (remote, remote_draws) = run_remote(make.as_ref(), 2, true);
    assert_eq!(remote, baseline, "batched remote results diverged");
    assert_eq!(remote_draws, baseline_draws, "batched draw count diverged");
}

/// The whole `vqa` driver stack runs against a remote executor unchanged — same
/// generic entry point, same energies bit-for-bit, same shot accounting — because
/// `NetClient` implements `JobSubmitter`.
#[test]
fn vqa_driver_runs_remotely_bit_identical() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ham = qchem::transverse_field_ising(3, 1.0, 0.5);
    let task = VqaTask::with_computed_reference("TFIM h=0.5", 0.5, ham);
    let ansatz = HardwareEfficientAnsatz::new(3, 2, Entanglement::Circular).build();
    let zeros = vec![0.0; ansatz.num_parameters()];
    let config = VqaRunConfig {
        max_iterations: 20,
        optimizer: qopt::OptimizerSpec::Spsa(qopt::SpsaConfig {
            a: 0.25,
            ..Default::default()
        }),
        seed: 5,
        record_every: 1,
    };

    let run = |remote: bool| {
        let executor = Arc::new(Executor::single(StatevectorBackend::with_shots(128)));
        if remote {
            let server =
                NetServer::bind("127.0.0.1:0", Arc::clone(&executor)).expect("bind loopback");
            let client = NetClient::connect(server.local_addr()).expect("connect loopback");
            run_single_vqa(
                &task,
                &ansatz,
                &InitialState::Basis(0),
                &zeros,
                &client,
                &config,
            )
            .expect("remote run")
        } else {
            run_single_vqa(
                &task,
                &ansatz,
                &InitialState::Basis(0),
                &zeros,
                &executor.client(),
                &config,
            )
            .expect("local run")
        }
    };

    let local = run(false);
    let remote = run(true);
    assert_eq!(remote.best_energy.to_bits(), local.best_energy.to_bits());
    assert_eq!(remote.shots_used, local.shots_used);
    assert_eq!(remote.history.len(), local.history.len());
    for (r, l) in remote.history.iter().zip(&local.history) {
        assert_eq!(r.loss.to_bits(), l.loss.to_bits());
        assert_eq!(r.exact_energy.to_bits(), l.exact_energy.to_bits());
    }
}

// ---------------------------------------------------------------------------
// 3. Service behavior.
// ---------------------------------------------------------------------------

fn spin_until(mut condition: impl FnMut() -> bool, what: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !condition() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting: {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Many connections submitting concurrently all complete, and the server accounts
/// for them per connection (labeled request counters) and in aggregate.
#[test]
fn concurrent_connections_all_complete_with_per_connection_accounting() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const CONNS: usize = 4;
    const PER_CONN: usize = 8;
    let executor = Arc::new(
        Executor::builder()
            .workers(2)
            .register("sv", StatevectorBackend::with_shots(64))
            .start(),
    );
    let server = NetServer::builder(Arc::clone(&executor))
        .observability(true)
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let addr = server.local_addr();

    let workers: Vec<_> = (0..CONNS)
        .map(|_c| {
            std::thread::spawn(move || {
                let client = NetClient::connect(addr).expect("connect");
                let handles: Vec<_> = (0..PER_CONN)
                    .map(|i| {
                        let (job, _) = loopback_jobs().swap_remove(i % JOBS);
                        client.submit(job).expect("submit")
                    })
                    .collect();
                for h in &handles {
                    h.wait().expect("job executes");
                }
                assert_eq!(client.rtt().count, PER_CONN as u64);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let snapshot = server.observability().snapshot();
    assert_eq!(snapshot.counter("conns_accepted"), CONNS as u64);
    assert_eq!(snapshot.counter("submits"), (CONNS * PER_CONN) as u64);
    assert_eq!(snapshot.counter("results_sent"), (CONNS * PER_CONN) as u64);
    assert_eq!(snapshot.counter("errors_sent"), 0);
    let conn_labels: Vec<_> = snapshot
        .labeled
        .iter()
        .filter(|(label, _)| label.starts_with("conn") && label.ends_with("_requests"))
        .collect();
    assert_eq!(
        conn_labels.len(),
        CONNS,
        "one request counter per connection"
    );
    for (label, count) in conn_labels {
        assert_eq!(*count, PER_CONN as u64, "uneven accounting on {label}");
    }
    server.shutdown();
    let snapshot = server.observability().snapshot();
    assert_eq!(snapshot.counter("conns_closed"), CONNS as u64);
}

/// A malformed payload answers with a `CODE_MALFORMED` error frame and the
/// connection survives to serve a well-formed request — the stream stays
/// frame-synced, so one bad request does not cost the client its connection.
#[test]
fn malformed_frame_answers_error_and_connection_survives() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let executor = Arc::new(Executor::single(StatevectorBackend::with_shots(64)));
    let server = NetServer::bind("127.0.0.1:0", executor).expect("bind loopback");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // A frame-synced but undecodable payload: correct header, 4 garbage bytes.
    let mut bad = Vec::new();
    bad.extend_from_slice(&wire::MAGIC.to_le_bytes());
    bad.push(wire::VERSION);
    bad.push(wire::TYPE_SUBMIT);
    bad.extend_from_slice(&0u64.to_le_bytes());
    bad.extend_from_slice(&4u32.to_le_bytes());
    bad.extend_from_slice(&[0xFF; 4]);
    use std::io::Write as _;
    stream.write_all(&bad).expect("write malformed");
    match wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME).expect("error frame arrives") {
        Frame::Error { code, .. } => assert_eq!(code, wire::CODE_MALFORMED),
        other => panic!("expected a malformed-code error frame, got {other:?}"),
    }

    // The same connection still executes a valid job.
    let (job, _) = loopback_jobs().swap_remove(0);
    let frame = Frame::Submit(SubmitFrame {
        request_id: 7,
        probe: false,
        opts: SubmitOptions::default(),
        job,
    });
    wire::write_frame(&mut stream, &frame, wire::DEFAULT_MAX_FRAME).expect("write valid");
    match wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME).expect("result arrives") {
        Frame::Result { request_id, .. } => assert_eq!(request_id, 7),
        other => panic!("expected a result frame, got {other:?}"),
    }
    server.shutdown();
}

/// Hostile job payloads — NaN parameters, absurd registers, empty observables — are
/// refused with the *same* stable codes remotely as locally: a wire client and an
/// in-process caller agree on what was wrong.
#[test]
fn hostile_jobs_refused_with_matching_codes_remote_and_local() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let executor = Arc::new(Executor::single(StatevectorBackend::with_shots(64)));
    let server = NetServer::bind("127.0.0.1:0", executor).expect("bind loopback");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    let small = Arc::new(HardwareEfficientAnsatz::new(2, 1, Entanglement::Linear).build());
    let zz = Arc::new(PauliOp::from_labels(2, &[("ZZ", 1.0)]));
    let nan_params = {
        let mut p = vec![0.1; small.num_parameters()];
        p[1] = f64::NAN;
        p
    };
    let huge =
        Arc::new(HardwareEfficientAnsatz::new(MAX_JOB_QUBITS + 1, 1, Entanglement::Linear).build());
    let huge_op = Arc::new(PauliOp::from_labels(
        MAX_JOB_QUBITS + 1,
        &[(&"Z".repeat(MAX_JOB_QUBITS + 1), 1.0)],
    ));
    let hostile: Vec<(EvalJob, ExecError)> = vec![
        (
            EvalJob::new(
                Arc::clone(&small),
                nan_params,
                InitialState::Basis(0),
                Arc::clone(&zz),
            ),
            ExecError::NonFiniteParameter { index: 1 },
        ),
        (
            EvalJob::new(
                Arc::clone(&huge),
                vec![0.0; huge.num_parameters()],
                InitialState::Basis(0),
                huge_op,
            ),
            ExecError::RegisterTooLarge {
                num_qubits: MAX_JOB_QUBITS + 1,
                max: MAX_JOB_QUBITS,
            },
        ),
        (
            EvalJob::new(
                Arc::clone(&small),
                vec![0.1; small.num_parameters()],
                InitialState::Basis(0),
                Arc::new(PauliOp::zero(2)),
            ),
            ExecError::EmptyObservable,
        ),
    ];
    for (request_id, (job, expected)) in hostile.into_iter().enumerate() {
        assert_eq!(job.validate(), Err(expected.clone()), "local validation");
        let frame = Frame::Submit(SubmitFrame {
            request_id: request_id as u64,
            probe: false,
            opts: SubmitOptions::default(),
            job,
        });
        wire::write_frame(&mut stream, &frame, wire::DEFAULT_MAX_FRAME).expect("write hostile");
        match wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME).expect("refusal arrives") {
            Frame::Error {
                request_id: rid,
                code,
                aux0,
                aux1,
                text,
            } => {
                assert_eq!(rid, request_id as u64);
                assert_eq!(code, expected.code(), "remote code diverged from local");
                assert_eq!(
                    Frame::to_exec_error(code, aux0, aux1, text),
                    expected,
                    "remote refusal lost structure"
                );
            }
            other => panic!("expected a refusal, got {other:?}"),
        }
    }
    server.shutdown();
}

/// Connections beyond `max_conns` receive a polite over-capacity notice (their
/// handles resolve `Overloaded`), while established connections keep working.
#[test]
fn over_capacity_connections_politely_refused() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let executor = Arc::new(Executor::single(StatevectorBackend::with_shots(64)));
    let server = NetServer::builder(Arc::clone(&executor))
        .max_conns(1)
        .bind("127.0.0.1:0")
        .expect("bind loopback");

    let first = NetClient::connect(server.local_addr()).expect("first connect");
    spin_until(
        || server.active_connections() == 1,
        "first connection registered",
    );
    let second = NetClient::connect(server.local_addr()).expect("tcp connect succeeds");
    spin_until(|| second.is_closed(), "over-capacity refusal processed");
    let (job, _) = loopback_jobs().swap_remove(0);
    assert_eq!(second.submit(job).map(|_| ()), Err(ExecError::Overloaded));

    // The first connection is unaffected.
    let (job, _) = loopback_jobs().swap_remove(1);
    first.submit(job).expect("submit").wait().expect("executes");
    drop(second);
    drop(first);
    server.shutdown();
    assert_eq!(
        server.observability().snapshot().counter("conns_rejected"),
        1
    );
}

/// Shutdown fails queued work cleanly: every outstanding handle resolves with the
/// structured `ShutDown` error (never hangs, never a dropped connection mystery),
/// and later submissions are refused with the same code.
#[test]
fn shutdown_fails_queued_work_cleanly() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // A paused executor guarantees the jobs are still queued when shutdown lands.
    let executor = Arc::new(
        Executor::builder()
            .paused()
            .register("sv", StatevectorBackend::with_shots(64))
            .start(),
    );
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&executor)).expect("bind loopback");
    let client = NetClient::connect(server.local_addr()).expect("connect");
    let handles: Vec<_> = (0..5)
        .map(|i| {
            let (job, _) = loopback_jobs().swap_remove(i);
            client.submit(job).expect("submit")
        })
        .collect();
    // Ensure the server has accepted all five before shutting down.
    spin_until(
        || server.observability().snapshot().counter("submits") == 5,
        "server accepted the queued jobs",
    );
    server.shutdown();
    for h in &handles {
        assert_eq!(
            h.wait(),
            Err(ExecError::ShutDown),
            "queued job must report shutdown"
        );
    }
    spin_until(|| client.is_closed(), "client saw the shutdown notice");
    let (job, _) = loopback_jobs().swap_remove(5);
    assert_eq!(client.submit(job).map(|_| ()), Err(ExecError::ShutDown));
    executor.resume();
}
