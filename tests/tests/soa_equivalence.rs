//! Property tests pinning the split-lane (SoA) statevector kernels to the retained
//! **interleaved** reference implementations.
//!
//! PR 4 changed the storage layout of every dense kernel from interleaved `Complex64`
//! to split re/im `f64` lanes.  The reference kernels in `qsim::reference` deliberately
//! stayed on interleaved storage (converting at entry/exit), so every property here
//! compares two genuinely different memory layouts — an index or lane mix-up cannot
//! cancel out.  All agreements are demanded to 1e-12 per amplitude; the suites run in
//! CI under `RAYON_NUM_THREADS ∈ {1, 2, 4}` so both the serial 4-wide-chunked paths and
//! the partitioned parallel paths are pinned.

use proptest::prelude::*;
use qcircuit::{Angle, Circuit, Gate};
use qop::{Complex64, PauliString, Statevector};
use qsim::{reference, run_circuit, CompiledCircuit, PauliInsertion};

/// Forces the kernels' parallel paths even on single-core CI machines (the vendored
/// rayon honors this like the real global-pool configuration).
fn force_parallel_workers() {
    // Honor the CI matrix's RAYON_NUM_THREADS (1 pins every kernel serial, 2/4 vary
    // the worker partitioning); default to 4 so a plain local `cargo test` still
    // drives the parallel paths on a single-core box.
    let threads = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .ok();
}

/// A dense, structured, normalized state: every amplitude distinct so index or phase
/// mix-ups cannot cancel.
fn dense_state(num_qubits: usize) -> Statevector {
    let dim = 1usize << num_qubits;
    let mut psi = Statevector::from_amplitudes(
        (0..dim)
            .map(|i| Complex64::new((i as f64 * 0.149).sin() + 0.25, (i as f64 * 0.313).cos()))
            .collect(),
    );
    psi.normalize();
    psi
}

fn max_amplitude_diff(a: &Statevector, b: &Statevector) -> f64 {
    a.to_amplitudes()
        .iter()
        .zip(b.to_amplitudes())
        .map(|(x, y)| (*x - y).norm())
        .fold(0.0, f64::max)
}

fn assert_bit_identical(a: &Statevector, b: &Statevector) {
    for (x, y) in a.re().iter().zip(b.re()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for (x, y) in a.im().iter().zip(b.im()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

fn arb_pauli_label(num_qubits: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select(vec!['I', 'X', 'Y', 'Z']),
        num_qubits,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Strategy over **every** gate kind, including multi-qubit Pauli rotations (the gate
/// kind `kernel_equivalence`'s circuit strategy leaves to a separate property).
fn arb_gate_all_kinds(n: usize) -> impl Strategy<Value = Gate> {
    (
        0usize..12,
        0usize..n,
        0usize..n,
        -3.2f64..3.2,
        arb_pauli_label(n),
    )
        .prop_map(move |(kind, q, q2, theta, label)| {
            let q2 = if q2 == q { (q + 1) % n } else { q2 };
            match kind {
                0 => Gate::H(q),
                1 => Gate::X(q),
                2 => Gate::Y(q),
                3 => Gate::Z(q),
                4 => Gate::S(q),
                5 => Gate::Sdg(q),
                6 => Gate::Cx(q, q2),
                7 => Gate::Cz(q, q2),
                8 => Gate::Rx(q, Angle::Fixed(theta)),
                9 => Gate::Ry(q, Angle::Fixed(theta)),
                10 => Gate::Rz(q, Angle::Fixed(theta)),
                _ => Gate::PauliRotation(
                    PauliString::from_label(&label).unwrap(),
                    Angle::Fixed(theta),
                ),
            }
        })
}

fn circuit_from_gates(num_qubits: usize, gates: Vec<Gate>) -> Circuit {
    let mut circuit = Circuit::new(num_qubits);
    for gate in gates {
        circuit.push(gate);
    }
    circuit
}

/// A QAOA-shaped circuit whose cost layer compiles into a tabulated diagonal pass
/// (≥4 phase terms on ≥8 qubits): H wall, ZZ-ring rotations sharing parameter slot 0,
/// Rx mixers on slot 1.
fn qaoa_circuit(n: usize) -> Circuit {
    let mut circ = Circuit::new(n);
    for q in 0..n {
        circ.push(Gate::H(q));
    }
    for q in 0..n {
        let mut label = vec!['I'; n];
        label[q] = 'Z';
        label[(q + 1) % n] = 'Z';
        let string = PauliString::from_label(&label.iter().collect::<String>()).unwrap();
        circ.push(Gate::PauliRotation(string, Angle::param(0)));
    }
    for q in 0..n {
        circ.push(Gate::Rx(q, Angle::param(1)));
    }
    circ
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random circuits over every gate kind: SoA kernels vs the interleaved reference.
    #[test]
    fn soa_circuits_match_interleaved_reference(
        gates in proptest::collection::vec(arb_gate_all_kinds(6), 1..32),
    ) {
        force_parallel_workers();
        let n = 6;
        let circuit = circuit_from_gates(n, gates);
        let initial = dense_state(n);
        let fast = run_circuit(&circuit, &[], &initial);
        let naive = reference::run_circuit(&circuit, &[], &initial);
        prop_assert!(max_amplitude_diff(&fast, &naive) < 1e-12);
    }

    /// The split-lane reductions (norm, inner product, axpy, probabilities) agree with
    /// direct interleaved arithmetic on the converted amplitudes.
    #[test]
    fn soa_reductions_match_interleaved_arithmetic(
        seed_re in -1.0f64..1.0,
        seed_im in -1.0f64..1.0,
        scale_re in -1.0f64..1.0,
        scale_im in -1.0f64..1.0,
    ) {
        let n = 7;
        let dim = 1usize << n;
        let a = Statevector::from_amplitudes(
            (0..dim)
                .map(|i| Complex64::new((i as f64 * 0.31 + seed_re).sin(), (i as f64 * 0.17 + seed_im).cos()))
                .collect(),
        );
        let b = dense_state(n);
        let (ai, bi) = (a.to_amplitudes(), b.to_amplitudes());

        let norm_ref = ai.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        prop_assert!((a.norm() - norm_ref).abs() < 1e-12);

        let inner_ref: Complex64 = ai.iter().zip(&bi).map(|(x, y)| x.conj() * *y).sum();
        prop_assert!((a.inner(&b) - inner_ref).norm() < 1e-12);

        for (p, z) in a.probabilities().iter().zip(&ai) {
            prop_assert!((p - z.norm_sqr()).abs() < 1e-15);
        }

        let coeff = Complex64::new(scale_re, scale_im);
        let mut axpy = a.clone();
        axpy.axpy(coeff, &b);
        for (got, (x, y)) in axpy.to_amplitudes().iter().zip(ai.iter().zip(&bi)) {
            let want = *x + coeff * *y;
            prop_assert!((*got - want).norm() < 1e-12);
        }
    }

    /// Paired insertions cancel exactly: a schedule inserting the same Pauli twice after
    /// randomly chosen compiled ops is bit-identical to plain execution (P² = I and the
    /// split-lane application is phase-exact), which pins the insertion splice points
    /// and the apply_pauli_string kernel at arbitrary mid-circuit states.
    #[test]
    fn paired_insertions_cancel_bit_exactly(
        gates in proptest::collection::vec(arb_gate_all_kinds(5), 4..24),
        raw_sites in proptest::collection::vec((0usize..64, arb_pauli_label(5)), 1..5),
    ) {
        force_parallel_workers();
        let n = 5;
        let circuit = circuit_from_gates(n, gates);
        let compiled = CompiledCircuit::compile(&circuit);
        let mut insertions: Vec<PauliInsertion> = Vec::new();
        let mut sites: Vec<(usize, String)> = raw_sites
            .into_iter()
            .map(|(op, label)| (op % compiled.num_ops(), label))
            .collect();
        sites.sort_by_key(|(op, _)| *op);
        for (op, label) in sites {
            let string = PauliString::from_label(&label).unwrap();
            for _ in 0..2 {
                insertions.push(PauliInsertion { after_op: op, string });
            }
        }
        let initial = dense_state(n);
        let mut plain = initial.clone();
        let mut spliced = initial.clone();
        compiled.execute_in_place(&[], &mut plain);
        compiled.execute_in_place_with_insertions(&[], &mut spliced, &insertions, None);
        assert_bit_identical(&plain, &spliced);
    }

    /// A single trailing insertion equals the interleaved reference applied to the
    /// reference-evolved state — the non-empty-schedule agreement across layouts.
    #[test]
    fn trailing_insertion_matches_interleaved_reference(
        gates in proptest::collection::vec(arb_gate_all_kinds(5), 1..16),
        label in arb_pauli_label(5),
    ) {
        force_parallel_workers();
        let n = 5;
        let circuit = circuit_from_gates(n, gates);
        let compiled = CompiledCircuit::compile(&circuit);
        let string = PauliString::from_label(&label).unwrap();
        let insertions = [PauliInsertion {
            after_op: compiled.num_ops() - 1,
            string,
        }];
        let initial = dense_state(n);
        let mut spliced = initial.clone();
        compiled.execute_in_place_with_insertions(&[], &mut spliced, &insertions, None);
        let mut naive = reference::run_circuit(&circuit, &[], &initial);
        reference::apply_pauli_string(&mut naive, &string);
        prop_assert!(max_amplitude_diff(&spliced, &naive) < 1e-12);
    }
}

proptest! {
    // Fewer cases for the expensive properties (tabulated diagonal tables need ≥8
    // qubits; the 14-qubit circuits drive the parallel kernel paths at the default
    // threshold).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Diagonal batch tables: cached execution is bit-identical to uncached and matches
    /// the interleaved reference, for batches whose diagonal angles are uniform.
    #[test]
    fn batch_tables_match_reference_and_uncached(
        gamma in -3.0f64..3.0,
        beta_a in -3.0f64..3.0,
        beta_b in -3.0f64..3.0,
    ) {
        force_parallel_workers();
        let n = 9;
        let circ = qaoa_circuit(n);
        let compiled = CompiledCircuit::compile(&circ);
        prop_assert!(compiled.stats().diagonal_passes >= 1);
        let bindings = [[gamma, beta_a], [gamma, beta_b]];
        let params_list: Vec<&[f64]> = bindings.iter().map(|b| b.as_slice()).collect();
        let tables = compiled.prepare_batch_tables(&params_list);
        prop_assert!(tables.num_bound() >= 1);
        for params in &bindings {
            let mut cached = Statevector::zero_state(n);
            let mut fresh = Statevector::zero_state(n);
            compiled.execute_in_place_cached(params, &mut cached, &tables);
            compiled.execute_in_place(params, &mut fresh);
            assert_bit_identical(&cached, &fresh);
            let naive = reference::run_circuit(&circ, params, &Statevector::zero_state(n));
            prop_assert!(max_amplitude_diff(&cached, &naive) < 1e-12);
        }
    }

    /// 14-qubit circuits cross the default parallel threshold: the partitioned parallel
    /// split-lane kernels match the serial interleaved reference.
    #[test]
    fn parallel_soa_kernels_match_reference(
        gates in proptest::collection::vec(arb_gate_all_kinds(14), 1..8),
    ) {
        force_parallel_workers();
        let n = 14;
        let circuit = circuit_from_gates(n, gates);
        let initial = dense_state(n);
        let fast = run_circuit(&circuit, &[], &initial);
        let naive = reference::run_circuit(&circuit, &[], &initial);
        prop_assert!(max_amplitude_diff(&fast, &naive) < 1e-12);
    }
}
