//! Observability suite: span completeness under faults, histogram bucket math, and
//! the disabled-mode bit-identity contract.
//!
//! The contracts under test:
//!
//! 1. **Span completeness** — with recording on, every *admitted* job leaves exactly
//!    one finished lifecycle span whose terminal label matches the outcome its handle
//!    reported, across every resolution path (success, structured failure, expiry,
//!    shedding, cancellation, shutdown).  No span leaks (`open == 0` once all handles
//!    resolve) and no span is orphaned (outcome tallies sum to the finished count).
//! 2. **Histogram math** — the log₂-bucketed latency histogram preserves exact
//!    count/sum/min/max, brackets every quantile by `[min, max]`, and merges
//!    associatively (proptest).
//! 3. **Bit-identity** — a traced run returns bit-identical results to an untraced
//!    run of the same workload: recording sits entirely off the driver path.

use proptest::prelude::*;
use qcircuit::{Circuit, Entanglement, HardwareEfficientAnsatz};
use qexec::fault::{FaultPlan, FaultyBackend};
use qexec::qobs;
use qexec::{AdmissionPolicy, EvalJob, ExecError, Executor, JobHandle, SubmitOptions};
use qop::PauliOp;
use std::sync::Arc;
use std::time::Duration;
use vqa::{InitialState, SampledBackend, StatevectorBackend};

/// Injected faults unwind through `catch_unwind` by design; silence the default hook
/// so the expected panics don't spray backtraces over the test output.
fn silence_expected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

fn demo_circuit(num_qubits: usize) -> Arc<Circuit> {
    Arc::new(HardwareEfficientAnsatz::new(num_qubits, 2, Entanglement::Circular).build())
}

fn demo_op(num_qubits: usize) -> Arc<PauliOp> {
    let mut label = String::from("ZZ");
    while label.len() < num_qubits {
        label.push('I');
    }
    Arc::new(PauliOp::from_labels(num_qubits, &[(label.as_str(), -1.0)]))
}

fn demo_job(circuit: &Arc<Circuit>, op: &Arc<PauliOp>, salt: usize) -> EvalJob {
    let params: Vec<f64> = (0..circuit.num_parameters())
        .map(|i| 0.05 * i as f64 + 0.013 * salt as f64)
        .collect();
    EvalJob::new(
        Arc::clone(circuit),
        params,
        InitialState::Basis(0),
        Arc::clone(op),
    )
}

/// The span outcome label a resolved handle must have produced.
fn expected_label(result: &Result<vqa::EvalResult, ExecError>) -> &'static str {
    match result {
        Ok(_) => "completed",
        Err(ExecError::Cancelled) => "cancelled",
        Err(ExecError::DeadlineExceeded) => "expired",
        Err(ExecError::Overloaded) => "shed",
        Err(ExecError::ShutDown) => "shutdown",
        Err(_) => "failed",
    }
}

/// Asserts the registry agrees with the per-handle ground truth: exactly one finished
/// span per admitted job, labels matching, nothing open, nothing orphaned.
fn assert_span_complete(registry: &qobs::Registry, results: &[Result<vqa::EvalResult, ExecError>]) {
    let summary = registry.snapshot().spans;
    assert_eq!(
        summary.started,
        results.len() as u64,
        "one span per admitted job"
    );
    assert_eq!(summary.finished, summary.started, "no span leaks");
    assert_eq!(summary.open, 0, "no orphaned spans");
    let tally_sum: u64 = summary.outcomes.iter().map(|&(_, n)| n).sum();
    assert_eq!(
        tally_sum, summary.finished,
        "every finished span has one terminal label"
    );
    for label in [
        "completed",
        "failed",
        "expired",
        "shed",
        "cancelled",
        "shutdown",
    ] {
        let expected = results
            .iter()
            .filter(|r| expected_label(r) == label)
            .count() as u64;
        assert_eq!(
            summary.outcome(label),
            expected,
            "terminal label tally mismatch for {label:?} (summary: {summary:?})"
        );
    }
}

/// Mixed-priority, fault-injected soak: 6 waves x 6 jobs against a faulty backend with
/// retries and failover, plus a deadline wave.  Every admitted job must leave exactly
/// one complete, correctly-labeled span.
#[test]
fn soak_every_job_leaves_one_complete_span() {
    silence_expected_panics();
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let plan = FaultPlan::new(17)
        .with_panic_rate(0.10)
        .with_transient_rate(0.20);
    let executor = Executor::builder()
        .register(
            "faulty",
            FaultyBackend::new(StatevectorBackend::with_shots(64), plan),
        )
        .register("standby", StatevectorBackend::with_shots(64))
        .retry_limit(2)
        .observability(true)
        .start();
    let clients = [executor.client(), executor.client(), executor.client()];

    let mut handles: Vec<JobHandle> = Vec::new();
    for wave in 0..6 {
        let guard = executor.scoped_pause();
        for (c, client) in clients.iter().enumerate() {
            for j in 0..2 {
                let mut job = demo_job(&circuit, &op, wave * 6 + c * 2 + j);
                if wave == 3 && c == 1 {
                    // These lapse while the executor is still paused below.
                    job = job.with_timeout(Duration::from_millis(1));
                }
                let opts = SubmitOptions {
                    priority: c as qexec::Priority - 1,
                    retries: 2,
                    failover: true,
                    ..SubmitOptions::default()
                };
                handles.push(client.submit_with(job, &opts).unwrap());
            }
        }
        if wave == 3 {
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(guard);
        executor.wait_idle();
    }

    let results: Vec<_> = handles
        .iter()
        .map(|h| {
            h.wait_timeout(Duration::from_secs(60))
                .expect("no injected fault may hang a handle")
        })
        .collect();
    assert_span_complete(&executor.observability(), &results);

    // Latency histograms cover every admitted job end-to-end, and only executed jobs
    // contribute an exec stage.
    let snap = executor.observability().snapshot();
    assert_eq!(snap.e2e_latency.count, results.len() as u64);
    assert_eq!(snap.queue_latency.count, results.len() as u64);
    assert!(snap.exec_latency.count <= results.len() as u64);
    assert!(snap.exec_latency.count >= results.iter().filter(|r| r.is_ok()).count() as u64);
}

/// Shedding and cancellation also land terminal labels: a 4-deep shed-policy queue
/// over-submitted while paused, then one queued job cancelled.
#[test]
fn shed_and_cancel_paths_label_spans() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register("sv", StatevectorBackend::with_shots(0))
        .queue_capacity(4)
        .admission(AdmissionPolicy::ShedLowestPriority)
        .observability(true)
        .paused()
        .start();
    let client = executor.client();

    let mut handles: Vec<JobHandle> = Vec::new();
    // Fill the queue at low priority, then displace with high-priority arrivals.
    for i in 0..4 {
        let opts = SubmitOptions {
            priority: 0,
            ..SubmitOptions::default()
        };
        handles.push(
            client
                .submit_with(demo_job(&circuit, &op, i), &opts)
                .unwrap(),
        );
    }
    for i in 4..6 {
        let opts = SubmitOptions {
            priority: 5,
            ..SubmitOptions::default()
        };
        handles.push(
            client
                .submit_with(demo_job(&circuit, &op, i), &opts)
                .unwrap(),
        );
    }
    // Cancel one job that is still queued (a high-priority one, guaranteed queued
    // rather than shed).
    assert!(handles[5].cancel());
    executor.resume();

    let results: Vec<_> = handles
        .iter()
        .map(|h| h.wait_timeout(Duration::from_secs(60)).expect("resolved"))
        .collect();
    assert_span_complete(&executor.observability(), &results);
    let summary = executor.observability().snapshot().spans;
    assert_eq!(
        summary.outcome("shed"),
        2,
        "two low-priority jobs displaced"
    );
    assert_eq!(summary.outcome("cancelled"), 1);
    assert_eq!(summary.outcome("completed"), 3);
}

/// Dropping an executor with queued work finishes those spans with the `shutdown`
/// label — shutdown is a terminal outcome, not a leak.
#[test]
fn shutdown_finishes_queued_spans() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register("sv", StatevectorBackend::with_shots(0))
        .observability(true)
        .paused()
        .start();
    let client = executor.client();
    let handles: Vec<JobHandle> = (0..3)
        .map(|i| client.submit(demo_job(&circuit, &op, i)).unwrap())
        .collect();
    let registry = executor.observability();
    drop(executor);
    let results: Vec<_> = handles
        .iter()
        .map(|h| h.wait_timeout(Duration::from_secs(60)).expect("resolved"))
        .collect();
    assert!(results
        .iter()
        .all(|r| matches!(r, Err(ExecError::ShutDown))));
    assert_span_complete(&registry, &results);
}

/// With recording off (the default), no spans exist but the always-live event
/// counters still back `Executor::stats()`.
#[test]
fn disabled_mode_records_no_spans() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register("sv", StatevectorBackend::with_shots(0))
        .observability(false)
        .start();
    let client = executor.client();
    for i in 0..4 {
        client
            .submit(demo_job(&circuit, &op, i))
            .unwrap()
            .wait()
            .unwrap();
    }
    let snap = executor.observability().snapshot();
    assert!(!snap.enabled);
    assert_eq!(snap.spans.started, 0);
    assert_eq!(snap.spans.finished, 0);
    assert_eq!(snap.e2e_latency.count, 0);
}

/// One job's resolution reduced to comparable bits: slate sequence, the
/// `(shots, samples)` payload when it completed, and the expected span label.
type ResolutionBits = (Option<u64>, Option<(u64, Vec<u64>)>, &'static str);

/// Runs the identical seeded fault workload through an executor with recording `on`,
/// reducing every resolution to comparable bits.
fn traced_run(on: bool) -> Vec<ResolutionBits> {
    silence_expected_panics();
    let circuit = demo_circuit(4);
    let op = demo_op(4);
    // Transient faults only: they fail jobs deterministically without quarantining,
    // so the comparison never races the supervisor's wall-clock readmission.
    let plan = FaultPlan::new(23).with_transient_rate(0.2);
    // A sampled backend consumes an RNG stream in scheduled order, so any tracing
    // interference with scheduling or execution would shift sampled bits.  (Sampled
    // backends are not retry-safe, so faulted jobs fail structurally — identically in
    // both runs.)
    let executor = Executor::builder()
        .register(
            "faulty",
            FaultyBackend::new(SampledBackend::new(64, 7), plan),
        )
        .observability(on)
        .start();
    let client = executor.client();
    let mut out = Vec::new();
    for wave in 0..4 {
        let guard = executor.scoped_pause();
        let handles: Vec<JobHandle> = (0..4)
            .map(|j| {
                client
                    .submit(demo_job(&circuit, &op, wave * 4 + j))
                    .unwrap()
            })
            .collect();
        drop(guard);
        for handle in &handles {
            let result = handle
                .wait_timeout(Duration::from_secs(60))
                .expect("resolved");
            out.push((
                handle.sequence(),
                result.as_ref().ok().map(|r| {
                    (
                        r.charged.to_bits(),
                        r.free.iter().map(|v| v.to_bits()).collect(),
                    )
                }),
                expected_label(&result),
            ));
        }
        executor.wait_idle();
    }
    out
}

/// The bit-identity contract: tracing on and off produce identical sequence numbers,
/// identical sampled result bits, and identical outcome labels.
#[test]
fn tracing_is_bit_identical_to_untraced() {
    let traced = traced_run(true);
    let untraced = traced_run(false);
    assert_eq!(traced, untraced);
}

proptest! {
    /// Exact count/sum/min/max, quantiles bracketed by `[min, max]` and monotone.
    #[test]
    fn histogram_preserves_exact_moments(values in proptest::collection::vec(0u64..u64::MAX, 1..200usize)) {
        let hist = qobs::Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v)));
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
        let mut last = snap.min;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let quantile = snap.quantile(q).unwrap();
            prop_assert!(quantile >= snap.min && quantile <= snap.max);
            prop_assert!(quantile >= last, "quantiles must be monotone in q");
            last = quantile;
        }
    }

    /// Merging per-shard snapshots is equivalent to recording everything into one
    /// histogram (the property the registry relies on when aggregating).
    #[test]
    fn histogram_merge_equals_single_recording(
        a in proptest::collection::vec(0u64..u64::MAX, 0..100usize),
        b in proptest::collection::vec(0u64..u64::MAX, 0..100usize),
    ) {
        let whole = qobs::Histogram::new();
        let left = qobs::Histogram::new();
        let right = qobs::Histogram::new();
        for &v in &a {
            whole.record(v);
            left.record(v);
        }
        for &v in &b {
            whole.record(v);
            right.record(v);
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        let expected = whole.snapshot();
        prop_assert_eq!(merged.buckets, expected.buckets);
        prop_assert_eq!(merged.count, expected.count);
        prop_assert_eq!(merged.sum, expected.sum);
        prop_assert_eq!(merged.min, expected.min);
        prop_assert_eq!(merged.max, expected.max);
    }

    /// A single recorded value is every quantile: the bucket's upper bound is clamped
    /// back to the observed range.
    #[test]
    fn histogram_single_value_quantiles(v in 0u64..u64::MAX, q in 0.0f64..1.0) {
        let hist = qobs::Histogram::new();
        hist.record(v);
        prop_assert_eq!(hist.snapshot().quantile(q), Some(v));
    }
}

/// The qsim pattern profiler: force-enabled, every compile registers a signature and
/// every execution ticks it; per-kind op executions scale with the execution count.
/// (This test owns the process-wide flag; the executor tests above use per-registry
/// builder flags precisely so they stay independent of it.)
#[test]
fn pattern_profiler_counts_executions() {
    qobs::set_enabled(true);
    qsim::profile::reset();
    // A distinctive shape so parallel tests cannot collide with the signature.
    let circuit = HardwareEfficientAnsatz::new(7, 3, Entanglement::Circular).build();
    let compiled = qsim::CompiledCircuit::compile(&circuit);
    let params: Vec<f64> = (0..circuit.num_parameters())
        .map(|i| 0.01 * i as f64)
        .collect();
    for _ in 0..5 {
        let mut state = qop::Statevector::basis_state(7, 0);
        compiled.execute_in_place(&params, &mut state);
    }
    // A cache-style clone shares the same profile entry.
    let clone = compiled.clone();
    let mut state = qop::Statevector::basis_state(7, 0);
    clone.execute_in_place(&params, &mut state);

    let stats = qsim::profile::snapshot()
        .into_iter()
        .find(|s| s.num_qubits == 7)
        .expect("the compiled pattern must be registered");
    qobs::set_enabled(false);
    assert_eq!(stats.compiles, 1);
    assert_eq!(stats.executions, 6);
    assert_eq!(stats.source_gates, compiled.stats().source_gates);
    assert_eq!(
        stats.op_executions.total(),
        6 * stats.op_counts.total(),
        "per-kind op executions scale with the execution count"
    );
    assert!(
        stats.signature.starts_with("q7|"),
        "signature {:?}",
        stats.signature
    );
}
