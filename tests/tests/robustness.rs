//! Robustness suite for the `qexec` service: queue-slot churn, admission control and
//! backpressure, deadlines and timeouts, and shutdown/cancellation races.
//!
//! These tests exercise the fault-tolerance contract *without* injected driver faults
//! (see `fault_injection.rs` for those): every handle must resolve to a structured
//! result, bounded queues must refuse or shed exactly as their policy says, and the
//! executor's slot table must stay bounded by the peak number of simultaneously live
//! clients, not by how many were ever created.  CI runs this suite under
//! `RAYON_NUM_THREADS ∈ {1, 2, 4}` alongside the determinism suite.

use qcircuit::{Circuit, Entanglement, HardwareEfficientAnsatz};
use qexec::{AdmissionPolicy, EvalJob, ExecError, Executor, JobHandle, Priority, SubmitOptions};
use qop::PauliOp;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vqa::{InitialState, StatevectorBackend};

fn demo_circuit(num_qubits: usize) -> Arc<Circuit> {
    Arc::new(HardwareEfficientAnsatz::new(num_qubits, 1, Entanglement::Linear).build())
}

fn demo_op(num_qubits: usize) -> Arc<PauliOp> {
    let mut label = String::from("Z");
    while label.len() < num_qubits {
        label.push('I');
    }
    Arc::new(PauliOp::from_labels(num_qubits, &[(label.as_str(), 1.0)]))
}

fn demo_job(circuit: &Arc<Circuit>, op: &Arc<PauliOp>, salt: usize) -> EvalJob {
    let params: Vec<f64> = (0..circuit.num_parameters())
        .map(|i| 0.03 * i as f64 + 0.017 * salt as f64)
        .collect();
    EvalJob::new(
        Arc::clone(circuit),
        params,
        InitialState::Basis(0),
        Arc::clone(op),
    )
}

fn priority_opts(priority: Priority) -> SubmitOptions {
    SubmitOptions {
        priority,
        ..SubmitOptions::default()
    }
}

// ---------------------------------------------------------------------------
// Queue-slot churn
// ---------------------------------------------------------------------------

/// Hundreds of sequential short-lived clients must not grow the slot table: each
/// dropped client's slot is reused once its jobs drain, so `client_slots()` stays
/// bounded by the peak number of simultaneously live clients.
#[test]
fn sequential_client_churn_keeps_slot_table_bounded() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::single(StatevectorBackend::new());
    for round in 0..300 {
        let handles: Vec<JobHandle> = {
            let client = executor.client();
            (0..2)
                .map(|j| {
                    client
                        .submit(demo_job(&circuit, &op, round * 2 + j))
                        .unwrap()
                })
                .collect()
            // `client` drops here with jobs possibly still queued: the slot must be
            // retired and reclaimed once they drain, never leaked.
        };
        for handle in &handles {
            handle.wait().expect("churned job completes");
        }
    }
    executor.wait_idle();
    assert!(
        executor.client_slots() <= 8,
        "300 short-lived clients leaked queue slots: {} allocated",
        executor.client_slots()
    );
}

/// Concurrent churn: slots are bounded by simultaneous liveness even when many threads
/// create and drop clients at once, and no submitted job is orphaned.
#[test]
fn concurrent_client_churn_keeps_slot_table_bounded() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Arc::new(Executor::single(StatevectorBackend::new()));
    let threads = 8;
    let rounds = 40;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let executor = Arc::clone(&executor);
            let circuit = Arc::clone(&circuit);
            let op = Arc::clone(&op);
            scope.spawn(move || {
                for round in 0..rounds {
                    let handle = {
                        let client = executor.client();
                        client
                            .submit(demo_job(&circuit, &op, t * rounds + round))
                            .unwrap()
                    };
                    handle.wait().expect("churned job completes");
                }
            });
        }
    });
    executor.wait_idle();
    assert!(
        executor.client_slots() <= 4 * threads,
        "concurrent churn leaked queue slots: {} allocated for {} peak clients",
        executor.client_slots(),
        threads
    );
}

// ---------------------------------------------------------------------------
// Admission control & backpressure
// ---------------------------------------------------------------------------

/// `Reject` is the default policy: a full global queue fails the submission with
/// `Overloaded` immediately, already-accepted jobs are unaffected, and the rejection
/// counter records every refusal.
#[test]
fn reject_policy_fails_submissions_beyond_capacity() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::new())
        .queue_capacity(4)
        .paused()
        .start();
    let client = executor.client();
    let handles: Vec<JobHandle> = (0..4)
        .map(|j| client.submit(demo_job(&circuit, &op, j)).unwrap())
        .collect();
    for j in 4..8 {
        assert_eq!(
            client.submit(demo_job(&circuit, &op, j)).unwrap_err(),
            ExecError::Overloaded,
            "submission {j} should bounce off the full queue"
        );
    }
    assert_eq!(executor.stats().rejected, 4);
    executor.resume();
    for handle in &handles {
        handle.wait().expect("accepted jobs still complete");
    }
}

/// The per-client bound is independent of the global one: one client saturating its own
/// queue cannot block a second client from being admitted.
#[test]
fn per_client_capacity_is_isolated_per_client() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::new())
        .per_client_capacity(2)
        .paused()
        .start();
    let noisy_neighbor = executor.client();
    let quiet = executor.client();
    let mut handles = vec![
        noisy_neighbor.submit(demo_job(&circuit, &op, 0)).unwrap(),
        noisy_neighbor.submit(demo_job(&circuit, &op, 1)).unwrap(),
    ];
    assert_eq!(
        noisy_neighbor
            .submit(demo_job(&circuit, &op, 2))
            .unwrap_err(),
        ExecError::Overloaded
    );
    handles.push(
        quiet
            .submit(demo_job(&circuit, &op, 3))
            .expect("a different client's queue has space even though the neighbor's is full"),
    );
    executor.resume();
    for handle in &handles {
        handle.wait().expect("admitted jobs complete");
    }
}

/// `ShedLowestPriority` keeps the queue holding the highest-value work: an important
/// newcomer evicts the least important queued job (which resolves `Overloaded`), while
/// an unimportant newcomer is rejected outright.
#[test]
fn shedding_evicts_lowest_priority_and_rejects_unimportant_newcomers() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::new())
        .queue_capacity(2)
        .admission(AdmissionPolicy::ShedLowestPriority)
        .paused()
        .start();
    let client = executor.client();
    let low = client
        .submit_with(demo_job(&circuit, &op, 0), &priority_opts(0))
        .unwrap();
    let mid = client
        .submit_with(demo_job(&circuit, &op, 1), &priority_opts(5))
        .unwrap();
    // Queue full. A high-priority newcomer sheds the priority-0 job in its favor.
    let high = client
        .submit_with(demo_job(&circuit, &op, 2), &priority_opts(9))
        .expect("important newcomer is admitted by shedding the least important job");
    assert_eq!(low.wait().unwrap_err(), ExecError::Overloaded);
    // Queue full again (mid + high). A newcomer that itself matters least is rejected
    // instead of evicting more important queued work.
    assert_eq!(
        client
            .submit_with(demo_job(&circuit, &op, 3), &priority_opts(0))
            .unwrap_err(),
        ExecError::Overloaded
    );
    let stats = executor.stats();
    assert_eq!(stats.shed, 1, "exactly one queued job was shed");
    assert_eq!(stats.rejected, 1, "exactly one newcomer was rejected");
    executor.resume();
    mid.wait().expect("surviving job completes");
    high.wait().expect("admitted newcomer completes");
}

/// `Block` applies backpressure instead of failing: a submitter against a full queue
/// parks until the worker drains space, and every admitted job still completes.
#[test]
fn block_policy_parks_submitters_until_space_drains() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::new())
        .queue_capacity(2)
        .admission(AdmissionPolicy::Block)
        .start();
    let client = executor.client();
    // 24 submissions through a 2-deep queue: most of them must block and be released
    // by the worker's drain notifications.
    let handles: Vec<JobHandle> = (0..24)
        .map(|j| {
            client
                .submit(demo_job(&circuit, &op, j))
                .expect("blocking admission never fails while the executor is live")
        })
        .collect();
    for handle in &handles {
        handle.wait().expect("blocked-then-admitted job completes");
    }
    assert_eq!(executor.stats().rejected, 0);
}

// ---------------------------------------------------------------------------
// Deadlines & timeouts
// ---------------------------------------------------------------------------

/// A job whose deadline has already passed is refused at the submission boundary — it
/// never occupies queue space.
#[test]
fn already_expired_deadline_is_rejected_at_submit() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::single(StatevectorBackend::new());
    let client = executor.client();
    let job = demo_job(&circuit, &op, 0).with_deadline(Instant::now() - Duration::from_millis(1));
    assert_eq!(client.submit(job).unwrap_err(), ExecError::DeadlineExceeded);
}

/// Deadlines fire even while the executor is paused: the worker's timed wait sweeps
/// expired jobs out of the queue without any scheduling happening.
#[test]
fn queued_job_expires_while_paused() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::new())
        .paused()
        .start();
    let client = executor.client();
    let doomed = client
        .submit(demo_job(&circuit, &op, 0).with_timeout(Duration::from_millis(30)))
        .unwrap();
    let patient = client.submit(demo_job(&circuit, &op, 1)).unwrap();
    // No resume: the deadline must fire anyway.
    assert_eq!(doomed.wait().unwrap_err(), ExecError::DeadlineExceeded);
    assert!(executor.stats().expired >= 1);
    assert!(!patient.is_finished(), "undeadlined job is still queued");
    executor.resume();
    patient
        .wait()
        .expect("undeadlined job completes after resume");
}

/// `wait_timeout` observes without cancelling: it returns `None` while the job is
/// pending and the result once the job runs.
#[test]
fn wait_timeout_polls_without_cancelling() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::new())
        .paused()
        .start();
    let client = executor.client();
    let handle = client.submit(demo_job(&circuit, &op, 0)).unwrap();
    assert!(
        handle.wait_timeout(Duration::from_millis(30)).is_none(),
        "paused executor cannot have run the job yet"
    );
    executor.resume();
    let result = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("job runs promptly after resume");
    result.expect("job completes successfully");
}

/// Mixed-deadline backlog: expired jobs drop with `DeadlineExceeded` ahead of slate
/// assembly, the rest execute, and nothing hangs.
#[test]
fn expired_jobs_are_swept_ahead_of_surviving_work() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::new())
        .paused()
        .start();
    let client = executor.client();
    let mut doomed = Vec::new();
    let mut alive = Vec::new();
    for j in 0..6 {
        let job = demo_job(&circuit, &op, j);
        if j % 2 == 0 {
            doomed.push(
                client
                    .submit(job.with_timeout(Duration::from_millis(20)))
                    .unwrap(),
            );
        } else {
            alive.push(client.submit(job).unwrap());
        }
    }
    std::thread::sleep(Duration::from_millis(60));
    executor.resume();
    for handle in &doomed {
        assert_eq!(handle.wait().unwrap_err(), ExecError::DeadlineExceeded);
    }
    for handle in &alive {
        handle.wait().expect("undeadlined jobs execute normally");
    }
    assert!(executor.stats().expired >= doomed.len() as u64);
}

// ---------------------------------------------------------------------------
// Shutdown & cancellation races
// ---------------------------------------------------------------------------

/// Dropping the executor fails every still-queued job with `ShutDown`; no handle waits
/// forever.
#[test]
fn shutdown_fails_queued_jobs_with_structured_error() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::builder()
        .register(qexec::DEFAULT_BACKEND, StatevectorBackend::new())
        .paused()
        .start();
    let client = executor.client();
    let handles: Vec<JobHandle> = (0..5)
        .map(|j| client.submit(demo_job(&circuit, &op, j)).unwrap())
        .collect();
    drop(executor);
    for handle in &handles {
        assert_eq!(handle.wait().unwrap_err(), ExecError::ShutDown);
    }
}

/// Cancellation racing the scheduler: submitters, a canceller, and the draining worker
/// all run concurrently, and every handle still resolves to exactly one of
/// success / `Cancelled` / `ShutDown`.
#[test]
fn cancellation_races_resolve_every_handle() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Arc::new(Executor::single(StatevectorBackend::new()));
    let mut all_handles = Vec::new();
    std::thread::scope(|scope| {
        let mut submitters = Vec::new();
        for t in 0..4 {
            let executor = Arc::clone(&executor);
            let circuit = Arc::clone(&circuit);
            let op = Arc::clone(&op);
            submitters.push(scope.spawn(move || {
                let client = executor.client();
                let handles: Vec<JobHandle> = (0..20)
                    .map(|j| client.submit(demo_job(&circuit, &op, t * 100 + j)).unwrap())
                    .collect();
                if t % 2 == 0 {
                    // Half the clients cancel whatever of theirs is still queued,
                    // racing the worker's slate assembly.
                    client.cancel_queued();
                }
                handles
            }));
        }
        for submitter in submitters {
            all_handles.extend(submitter.join().unwrap());
        }
    });
    executor.wait_idle();
    for handle in &all_handles {
        match handle.wait() {
            Ok(_) | Err(ExecError::Cancelled) => {}
            Err(other) => panic!("unexpected resolution under cancellation race: {other}"),
        }
    }
}

/// Per-handle `cancel` also races the worker cleanly: a cancelled handle resolves
/// `Cancelled` if it won the race, or with the computed result if the worker did.
#[test]
fn individual_cancel_races_the_worker() {
    let circuit = demo_circuit(3);
    let op = demo_op(3);
    let executor = Executor::single(StatevectorBackend::new());
    let client = executor.client();
    for round in 0..50 {
        let handle = client.submit(demo_job(&circuit, &op, round)).unwrap();
        handle.cancel();
        match handle.wait() {
            Ok(_) | Err(ExecError::Cancelled) => {}
            Err(other) => panic!("unexpected resolution after cancel: {other}"),
        }
    }
    executor.wait_idle();
}
