//! Property tests pinning compiled (fused) and batched execution to the naive
//! reference kernels.
//!
//! Companion to `kernel_equivalence.rs`: where that suite pins the per-gate kernels,
//! this one pins the two layers PR 2 added on top — [`qsim::CompiledCircuit`]'s
//! single-qubit fusion + diagonal batching, and the `vqa` backends' batched evaluation
//! over a compiled-circuit cache and scratch-state pool.  Every property demands
//! agreement with `qsim::reference` (or the serial evaluate loop) to 1e-12 on random
//! circuits that include parameterized rotations, Pauli rotations and diagonal runs.
//! The forced-parallel properties drive the across-state batch path with multiple
//! workers; batch sizes 1, 2 and 17 cover the degenerate, SPSA-pair and chunk-splitting
//! shapes.

use proptest::prelude::*;
use qcircuit::{Angle, Circuit, Gate};
use qop::{Complex64, PauliOp, PauliString, Statevector};
use qsim::{reference, CompiledCircuit};
use vqa::{Backend, EvalRequest, InitialState, SampledBackend, StatevectorBackend};

/// Forces multiple workers even on single-core CI machines (the vendored rayon honors
/// this like the real global-pool configuration).
fn force_parallel_workers() {
    // Honor the CI matrix's RAYON_NUM_THREADS (1 pins every kernel serial, 2/4 vary
    // the worker partitioning); default to 4 so a plain local `cargo test` still
    // drives the parallel paths on a single-core box.
    let threads = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .ok();
}

/// A dense, structured, normalized state: every amplitude distinct so index or phase
/// mix-ups cannot cancel.
fn dense_state(num_qubits: usize) -> Statevector {
    let dim = 1usize << num_qubits;
    let mut psi = Statevector::from_amplitudes(
        (0..dim)
            .map(|i| Complex64::new((i as f64 * 0.137).sin() + 0.3, (i as f64 * 0.291).cos()))
            .collect(),
    );
    psi.normalize();
    psi
}

fn max_amplitude_diff(a: &Statevector, b: &Statevector) -> f64 {
    a.to_amplitudes()
        .iter()
        .zip(b.to_amplitudes())
        .map(|(x, y)| (*x - y).norm())
        .fold(0.0, f64::max)
}

const NUM_PARAMS: usize = 4;

/// Strategy for one random gate on an `n`-qubit register: every gate kind, fixed and
/// parameterized angles, and Pauli rotations (whose labels make diagonal runs likely
/// enough to exercise the batching pass).
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    (
        0usize..14,
        0usize..n,
        0usize..n,
        -3.2f64..3.2,
        0usize..NUM_PARAMS,
        proptest::collection::vec(proptest::sample::select(vec!['I', 'X', 'Y', 'Z']), n),
        proptest::collection::vec(proptest::sample::select(vec!['I', 'Z']), n),
    )
        .prop_map(move |(kind, q, q2, theta, slot, label, diag_label)| {
            // Force distinct qubits for the two-qubit gates.
            let q2 = if q2 == q { (q + 1) % n } else { q2 };
            match kind {
                0 => Gate::H(q),
                1 => Gate::X(q),
                2 => Gate::Y(q),
                3 => Gate::Z(q),
                4 => Gate::S(q),
                5 => Gate::Sdg(q),
                6 => Gate::Cx(q, q2),
                7 => Gate::Cz(q, q2),
                8 => Gate::Rx(q, Angle::Fixed(theta)),
                9 => Gate::Ry(q, Angle::param(slot)),
                10 => Gate::Rz(q, Angle::param(slot)),
                11 => Gate::PauliRotation(
                    PauliString::from_label(&label.iter().collect::<String>()).unwrap(),
                    Angle::Fixed(theta),
                ),
                // Diagonal (Z/I) rotations, fixed and parameterized: the food of the
                // diagonal-batching pass.
                12 => Gate::PauliRotation(
                    PauliString::from_label(&diag_label.iter().collect::<String>()).unwrap(),
                    Angle::Fixed(theta),
                ),
                _ => Gate::PauliRotation(
                    PauliString::from_label(&diag_label.iter().collect::<String>()).unwrap(),
                    Angle::param(slot),
                ),
            }
        })
}

fn circuit_from_gates(num_qubits: usize, gates: Vec<Gate>) -> Circuit {
    let mut circuit = Circuit::new(num_qubits);
    for gate in gates {
        circuit.push(gate);
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled (fused + diagonal-batched) execution equals the naive reference on
    /// random circuits, to 1e-12 per amplitude.
    #[test]
    fn compiled_circuits_agree_with_reference(
        gates in proptest::collection::vec(arb_gate(6), 1..40),
        params in proptest::collection::vec(-3.2f64..3.2, NUM_PARAMS),
    ) {
        let n = 6;
        let circuit = circuit_from_gates(n, gates);
        let compiled = CompiledCircuit::compile(&circuit);
        let initial = dense_state(n);
        let mut fast = initial.clone();
        compiled.execute_in_place(&params, &mut fast);
        let naive = reference::run_circuit(&circuit, &params, &initial);
        prop_assert!(max_amplitude_diff(&fast, &naive) < 1e-12);
    }

    /// Re-binding a compiled circuit to new parameters equals compiling-and-running
    /// fresh: parameter slots must hold no stale state.
    #[test]
    fn compiled_rebinding_is_stateless(
        gates in proptest::collection::vec(arb_gate(5), 1..25),
        params_a in proptest::collection::vec(-3.2f64..3.2, NUM_PARAMS),
        params_b in proptest::collection::vec(-3.2f64..3.2, NUM_PARAMS),
    ) {
        let n = 5;
        let circuit = circuit_from_gates(n, gates);
        let compiled = CompiledCircuit::compile(&circuit);
        let initial = dense_state(n);
        let mut scratch = initial.clone();
        // Bind θ_a, then θ_b, on the same compiled object.
        compiled.execute_into(&params_a, &initial, &mut scratch);
        compiled.execute_into(&params_b, &initial, &mut scratch);
        let naive = reference::run_circuit(&circuit, &params_b, &initial);
        prop_assert!(max_amplitude_diff(&scratch, &naive) < 1e-12);
    }

    /// Batched backend evaluation equals a fresh serial backend, value for value and
    /// shot for shot, at batch sizes 1, 2 (the SPSA pair) and 17 (splits across the
    /// scratch-pool chunk size).
    #[test]
    fn batched_evaluation_equals_serial(
        gates in proptest::collection::vec(arb_gate(5), 1..20),
        params in proptest::collection::vec(-3.2f64..3.2, NUM_PARAMS),
    ) {
        let n = 5;
        let circuit = circuit_from_gates(n, gates);
        let charged = PauliOp::from_labels(n, &[("ZZIII", -1.0), ("IXIXI", 0.4), ("IIZZI", 0.7)]);
        let tracking = PauliOp::from_labels(n, &[("ZIIIZ", 0.9)]);
        for batch_size in [1usize, 2, 17] {
            let candidates: Vec<Vec<f64>> = (0..batch_size)
                .map(|k| params.iter().map(|p| p + 0.013 * k as f64).collect())
                .collect();
            let free_ops = [&tracking];
            let requests: Vec<EvalRequest<'_>> = candidates
                .iter()
                .map(|c| EvalRequest {
                    circuit: &circuit,
                    params: c,
                    initial: &InitialState::Basis(1),
                    charged_op: &charged,
                    free_ops: &free_ops,
                    stream: None,
                })
                .collect();
            let mut batched = StatevectorBackend::with_shots(64);
            let results = batched.evaluate_batch(&requests);
            let mut serial = StatevectorBackend::with_shots(64);
            for (candidate, result) in candidates.iter().zip(&results) {
                let (c_serial, f_serial) = serial.evaluate(
                    &circuit,
                    candidate,
                    &InitialState::Basis(1),
                    &charged,
                    &free_ops,
                );
                prop_assert!((result.charged - c_serial).abs() < 1e-12);
                prop_assert!((result.free[0] - f_serial[0]).abs() < 1e-12);
            }
            prop_assert_eq!(batched.shots_used(), serial.shots_used());
        }
    }
}

proptest! {
    // Fewer cases for the forced-parallel properties: each prepares many states.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The across-state parallel batch path (small register × many candidates, forced
    /// multi-worker) equals the serial loop exactly.
    #[test]
    fn parallel_batch_path_equals_serial(
        gates in proptest::collection::vec(arb_gate(11), 1..12),
        params in proptest::collection::vec(-3.2f64..3.2, NUM_PARAMS),
    ) {
        force_parallel_workers();
        // 17 candidates × 2^11 amplitudes crosses the default QSIM_PAR_THRESHOLD of
        // 2^14 while each state stays below it, which is exactly the regime where the
        // pool parallelizes across states.
        let n = 11;
        let circuit = circuit_from_gates(n, gates);
        let charged = PauliOp::from_labels(n, &[("ZZIIIIIIIII", -1.0), ("IIXIXIIIIII", 0.3)]);
        let candidates: Vec<Vec<f64>> = (0..17)
            .map(|k| params.iter().map(|p| p + 0.011 * k as f64).collect())
            .collect();
        let requests: Vec<EvalRequest<'_>> = candidates
            .iter()
            .map(|c| EvalRequest {
                circuit: &circuit,
                params: c,
                initial: &InitialState::Basis(0),
                charged_op: &charged,
                free_ops: &[],
                stream: None,
            })
            .collect();
        let mut batched = StatevectorBackend::with_shots(8);
        let results = batched.evaluate_batch(&requests);
        let mut serial = StatevectorBackend::with_shots(8);
        for (candidate, result) in candidates.iter().zip(&results) {
            let (c_serial, _) =
                serial.evaluate(&circuit, candidate, &InitialState::Basis(0), &charged, &[]);
            prop_assert!((result.charged - c_serial).abs() < 1e-12);
        }
    }

    /// The sampled backend consumes its RNG in request order regardless of batching, so
    /// batched and serial runs with the same seed produce identical noisy values.
    #[test]
    fn sampled_batch_rng_stream_is_order_stable(
        gates in proptest::collection::vec(arb_gate(5), 1..15),
        params in proptest::collection::vec(-3.2f64..3.2, NUM_PARAMS),
        seed in 0u64..1000,
    ) {
        force_parallel_workers();
        let n = 5;
        let circuit = circuit_from_gates(n, gates);
        let charged = PauliOp::from_labels(n, &[("ZZIII", -1.0), ("IXXII", 0.5)]);
        let candidates: Vec<Vec<f64>> = (0..6)
            .map(|k| params.iter().map(|p| p + 0.017 * k as f64).collect())
            .collect();
        let requests: Vec<EvalRequest<'_>> = candidates
            .iter()
            .map(|c| EvalRequest {
                circuit: &circuit,
                params: c,
                initial: &InitialState::UniformSuperposition,
                charged_op: &charged,
                free_ops: &[],
                stream: None,
            })
            .collect();
        let mut batched = SampledBackend::new(128, seed);
        let results = batched.evaluate_batch(&requests);
        let mut serial = SampledBackend::new(128, seed);
        for (candidate, result) in candidates.iter().zip(&results) {
            let (c_serial, _) = serial.evaluate(
                &circuit,
                candidate,
                &InitialState::UniformSuperposition,
                &charged,
                &[],
            );
            prop_assert_eq!(result.charged, c_serial);
        }
    }
}

/// One deterministic end-to-end check that the `run_circuit` wrapper (now compiled) and
/// the retained per-gate interpreter agree on an ansatz with every fusion pattern.
#[test]
fn wrapper_interpreter_and_reference_agree() {
    use qcircuit::{Entanglement, HardwareEfficientAnsatz};
    let circuit = HardwareEfficientAnsatz::new(6, 3, Entanglement::Circular).build();
    let params: Vec<f64> = (0..circuit.num_parameters())
        .map(|i| (i as f64 * 0.37).sin())
        .collect();
    let initial = dense_state(6);

    let compiled_out = qsim::run_circuit(&circuit, &params, &initial);
    let mut interpreted = initial.clone();
    qsim::interpret_circuit_in_place(&circuit, &params, &mut interpreted);
    let naive = reference::run_circuit(&circuit, &params, &initial);

    assert!(max_amplitude_diff(&compiled_out, &interpreted) < 1e-12);
    assert!(max_amplitude_diff(&compiled_out, &naive) < 1e-12);
}
