//! Property-based tests over the core data structures and invariants, spanning crates.

use proptest::prelude::*;
use qcircuit::{Angle, Circuit, Entanglement, Gate, HardwareEfficientAnsatz};
use qop::{PauliOp, PauliString, Statevector};
use qsim::run_circuit;

fn arb_pauli_label(num_qubits: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select(vec!['I', 'X', 'Y', 'Z']),
        num_qubits,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn arb_pauli_op(num_qubits: usize, max_terms: usize) -> impl Strategy<Value = PauliOp> {
    proptest::collection::vec((arb_pauli_label(num_qubits), -1.0f64..1.0), 1..max_terms).prop_map(
        move |terms| {
            let refs: Vec<(&str, f64)> = terms.iter().map(|(l, c)| (l.as_str(), *c)).collect();
            PauliOp::from_labels(num_qubits, &refs)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multiplying two Pauli strings always yields a phase in {1, i, -1, -i} and an
    /// involution-compatible product (P·P = I with phase 1).
    #[test]
    fn pauli_string_multiplication_phases(label_a in arb_pauli_label(5), label_b in arb_pauli_label(5)) {
        let a = PauliString::from_label(&label_a).unwrap();
        let b = PauliString::from_label(&label_b).unwrap();
        let (_, phase) = a.mul(&b);
        let magnitude = phase.norm();
        prop_assert!((magnitude - 1.0).abs() < 1e-12);
        let (self_product, self_phase) = a.mul(&a);
        prop_assert!(self_product.is_identity());
        prop_assert!((self_phase - qop::Complex64::ONE).norm() < 1e-12);
    }

    /// Commutation is symmetric and consistent with the qubit-wise check (qubit-wise
    /// commuting strings always commute globally).
    #[test]
    fn commutation_relations(label_a in arb_pauli_label(6), label_b in arb_pauli_label(6)) {
        let a = PauliString::from_label(&label_a).unwrap();
        let b = PauliString::from_label(&label_b).unwrap();
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
        if a.qubit_wise_commutes(&b) {
            prop_assert!(a.commutes_with(&b));
        }
    }

    /// The ℓ1 coefficient distance is a metric-like quantity: non-negative, symmetric,
    /// zero on identical operators, and satisfies the triangle inequality.
    #[test]
    fn l1_distance_is_metric_like(
        a in arb_pauli_op(3, 6),
        b in arb_pauli_op(3, 6),
        c in arb_pauli_op(3, 6),
    ) {
        let dab = a.l1_distance(&b);
        let dba = b.l1_distance(&a);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(a.l1_distance(&a) < 1e-12);
        let dac = a.l1_distance(&c);
        let dcb = c.l1_distance(&b);
        prop_assert!(dab <= dac + dcb + 1e-9);
    }

    /// The mixed Hamiltonian's expectation value equals the mean of the members'
    /// expectation values on any state (linearity, paper Section 5.2.1).
    #[test]
    fn mixed_hamiltonian_expectation_is_the_mean(
        a in arb_pauli_op(3, 5),
        b in arb_pauli_op(3, 5),
        seed in 0u64..1000,
    ) {
        let mixed = PauliOp::mixed(&[&a, &b]);
        // A deterministic pseudo-random product state from the seed.
        let mut circuit = Circuit::new(3);
        for q in 0..3 {
            let angle = (seed as f64 * 0.37 + q as f64 * 1.3).sin() * std::f64::consts::PI;
            circuit.push(Gate::Ry(q, Angle::Fixed(angle)));
        }
        let state = run_circuit(&circuit, &[], &Statevector::zero_state(3));
        let mean = 0.5 * (a.expectation(&state) + b.expectation(&state));
        prop_assert!((mixed.expectation(&state) - mean).abs() < 1e-9);
    }

    /// Circuit simulation is unitary: norms are preserved for arbitrary parameters.
    #[test]
    fn simulation_preserves_norm(params in proptest::collection::vec(-3.2f64..3.2, 24)) {
        let ansatz = HardwareEfficientAnsatz::new(4, 2, Entanglement::Circular).build();
        prop_assert_eq!(ansatz.num_parameters(), params.len());
        let out = run_circuit(&ansatz, &params, &Statevector::zero_state(4));
        prop_assert!((out.norm() - 1.0).abs() < 1e-9);
    }

    /// Expectation values always lie within the operator's ℓ1-norm bounds.
    #[test]
    fn expectation_bounded_by_l1_norm(
        op in arb_pauli_op(4, 8),
        params in proptest::collection::vec(-3.2f64..3.2, 16),
    ) {
        let ansatz = HardwareEfficientAnsatz::new(4, 1, Entanglement::Linear).build();
        let out = run_circuit(&ansatz, &params, &Statevector::zero_state(4));
        let value = op.expectation(&out);
        prop_assert!(value.abs() <= op.l1_norm() + 1e-9);
    }

    /// Spectral bipartition always produces two non-empty groups covering all items.
    #[test]
    fn spectral_bipartition_covers_all_items(
        points in proptest::collection::vec(0.0f64..10.0, 3..9),
        seed in 0u64..100,
    ) {
        let n = points.len();
        let distances: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| (points[i] - points[j]).abs()).collect())
            .collect();
        let sim = cluster::SimilarityMatrix::from_distances(&distances);
        let labels = cluster::spectral_bipartition(&sim, seed);
        prop_assert_eq!(labels.len(), n);
        let zeros = labels.iter().filter(|&&l| l == 0).count();
        prop_assert!(zeros > 0 && zeros < n);
    }

    /// The shot ledger is additive: charging in pieces equals charging at once.
    #[test]
    fn shot_ledger_additivity(terms in 1usize..500, evals in 1u64..20) {
        let mut piecewise = qsim::ShotLedger::new();
        for _ in 0..evals {
            piecewise.charge_evaluation(4096, terms);
        }
        prop_assert_eq!(piecewise.total(), 4096 * terms as u64 * evals);
        prop_assert_eq!(piecewise.evaluations(), evals);
    }

    /// Ground-state energies from Lanczos are variational lower bounds for every state the
    /// simulator can prepare.
    #[test]
    fn lanczos_energy_is_a_lower_bound(params in proptest::collection::vec(-3.2f64..3.2, 12)) {
        let ham = qchem::transverse_field_ising(3, 1.0, 0.8);
        let e0 = qop::ground_energy(&ham, &qop::LanczosOptions::default());
        let ansatz = HardwareEfficientAnsatz::new(3, 1, Entanglement::Circular).build();
        let out = run_circuit(&ansatz, &params, &Statevector::zero_state(3));
        prop_assert!(ham.expectation(&out) >= e0 - 1e-8);
    }
}
